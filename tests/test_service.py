"""Tests for the detection service: registry, protocol, HTTP server, client.

The end-to-end tests run the real ``ThreadingHTTPServer`` on an ephemeral
localhost port and talk to it through :class:`repro.service.ServiceClient`
— no mocking — including the multi-tenant concurrency scenario the ISSUE
names: N threads streaming detection against one registered graph while
another thread posts updates, asserting version isolation, per-request
budget enforcement, and clean shutdown.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.builtin_rules import example_rules, phi2
from repro.core.ngd import RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.detect import CollectingSink, Detector, FanOutSink
from repro.errors import SerializationError, ServiceError, UpdateError
from repro.graph.graph import Graph
from repro.graph.io import save_graph
from repro.graph.updates import BatchUpdate, NodePayload, apply_update
from repro.service import (
    DetectionService,
    GraphRegistry,
    ServiceClient,
    decode_record,
    encode_record,
    parse_detect_request,
)


def multi_area_graph(areas: int = 4, name: str = "areas") -> Graph:
    """A graph where every area violates φ2 (female + male ≠ total)."""
    graph = Graph(name)
    for i in range(areas):
        graph.add_node(f"area{i}", "area")
        graph.add_node(f"f{i}", "integer", {"val": 100 + i})
        graph.add_node(f"m{i}", "integer", {"val": 200 + i})
        graph.add_node(f"t{i}", "integer", {"val": 999})
        graph.add_edge(f"area{i}", f"f{i}", "femalePopulation")
        graph.add_edge(f"area{i}", f"m{i}", "malePopulation")
        graph.add_edge(f"area{i}", f"t{i}", "populationTotal")
    return graph


@pytest.fixture
def service():
    svc = DetectionService(port=0)
    svc.manager.register_catalog("example", example_rules())
    with svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


# ---------------------------------------------------------------- protocol


class TestProtocol:
    def test_parse_minimal_request(self):
        request = parse_detect_request({"catalog": "example"})
        assert request.catalog == "example"
        assert request.engine == "auto"
        assert request.max_violations is None

    def test_inline_rules_are_parsed_eagerly(self):
        request = parse_detect_request({"rules": RuleSet([phi2()]).to_dict()})
        assert len(request.rules) == 1
        with pytest.raises(ServiceError):
            parse_detect_request({"rules": {"bad": "shape"}})

    def test_both_rule_sources_rejected(self):
        with pytest.raises(ServiceError):
            parse_detect_request({"catalog": "a", "rules": RuleSet([phi2()]).to_dict()})

    @pytest.mark.parametrize(
        "document",
        [
            {"engine": "warp"},
            {"catalog": "x", "max_violations": 0},
            {"catalog": "x", "max_violations": True},
            {"catalog": "x", "max_cost": -1},
            {"catalog": "x", "processors": 0},
            {"catalog": 7},
            "not an object",
        ],
    )
    def test_malformed_requests_rejected(self, document):
        with pytest.raises(ServiceError):
            parse_detect_request(document)

    def test_record_round_trip(self):
        record = {"type": "violation", "rule": "r", "variables": ["x"], "nodes": ["a"], "introduced": True}
        assert decode_record(encode_record(record)) == record

    def test_decode_rejects_garbage(self):
        with pytest.raises(SerializationError):
            decode_record(b"{broken")
        with pytest.raises(SerializationError):
            decode_record(b'["no", "type"]')


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_register_and_version(self):
        registry = GraphRegistry()
        registered = registry.register("g", multi_area_graph(1))
        assert registered.version == 1
        assert registry.names() == ["g"]
        assert "g" in registry

    def test_duplicate_name_rejected(self):
        registry = GraphRegistry()
        registry.register("g", multi_area_graph(1))
        with pytest.raises(ServiceError, match="already registered"):
            registry.register("g", multi_area_graph(1))

    def test_unknown_graph_rejected(self):
        with pytest.raises(ServiceError, match="no graph"):
            GraphRegistry().get("missing")

    def test_update_bumps_version_and_swaps_snapshot(self):
        registry = GraphRegistry()
        registry.register("g", multi_area_graph(2))
        before, v1 = registry.get("g").snapshot()
        outcome = registry.apply_update("g", BatchUpdate().delete("area0", "t0", "populationTotal"))
        after, v2 = registry.get("g").snapshot()
        assert (v1, v2) == (1, 2)
        assert outcome.version == 2 and outcome.applied == 1
        # the old snapshot object is untouched (version isolation)
        assert before.has_edge("area0", "t0", "populationTotal")
        assert not after.has_edge("area0", "t0", "populationTotal")

    def test_failed_update_changes_nothing(self):
        registry = GraphRegistry()
        registry.register("g", multi_area_graph(1))
        graph_before, _ = registry.get("g").snapshot()
        with pytest.raises(UpdateError):
            registry.apply_update("g", BatchUpdate().delete("area0", "t0", "no_such_edge"))
        graph_after, version = registry.get("g").snapshot()
        assert version == 1 and graph_after is graph_before

    def test_register_file_round_trips_through_io(self, tmp_path):
        path = tmp_path / "g.json"
        save_graph(multi_area_graph(2), path)
        registry = GraphRegistry()
        registered = registry.register_file("g", path)
        assert registered.graph.node_count() == multi_area_graph(2).node_count()


# ---------------------------------------------------- HTTP server: basics


class TestServiceEndpoints:
    def test_health_and_listings(self, service, client):
        assert client.health()["status"] == "ok"
        assert client.list_graphs() == []
        assert client.list_rules()[0]["name"] == "example"

    def test_register_detect_update_session_cycle(self, service, client):
        """The acceptance-criteria tour: register → stream → update → delta."""
        graph = multi_area_graph(3)
        info = client.register_graph("areas", graph)
        assert info["version"] == 1 and info["nodes"] == 12

        # budgeted NDJSON stream
        records = list(client.stream_detect("areas", catalog="example", max_violations=2))
        assert [r["type"] for r in records] == ["violation", "violation", "summary"]
        assert records[-1]["stopped_early"] is True
        assert records[-1]["stop_reason"] == "max_violations"
        assert records[-1]["graph_version"] == 1

        # continuous session at version 1
        state = client.create_session("areas", catalog="example")
        assert state["violation_count"] == 3 and state["base_version"] == 1

        # post ΔG, read the per-version ViolationDelta
        update = client.post_update("areas", BatchUpdate().delete("area1", "t1", "populationTotal"))
        assert update["version"] == 2
        deltas = client.session_deltas(state["session"])
        assert [d["version"] for d in deltas["deltas"]] == [2]
        (delta,) = deltas["deltas"]
        assert delta["introduced"] == []
        assert [v["nodes"][0] for v in delta["removed"]] == ["area1"]

        # the session's maintained set matches a fresh full run
        session_state = client.session_state(state["session"])
        reply = client.detect("areas", catalog="example")
        assert session_state["current_version"] == 2
        assert ViolationSet.from_dict(session_state) == ViolationSet(reply.violations)

    def test_inline_rules_detection(self, service, client):
        client.register_graph("g", multi_area_graph(2))
        reply = client.detect("g", rules=RuleSet([phi2()], name="inline"))
        assert len(reply) == 2

    def test_detect_unknown_graph_is_404_class_error(self, service, client):
        with pytest.raises(ServiceError, match="no graph"):
            client.detect("missing", catalog="example")

    def test_detect_unknown_catalog_rejected(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        with pytest.raises(ServiceError, match="no rule catalog"):
            client.detect("g", catalog="missing")

    def test_detect_without_rules_rejected(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        with pytest.raises(ServiceError, match="inline 'rules' or name a 'catalog'"):
            client.detect("g")

    def test_duplicate_graph_registration_conflicts(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        with pytest.raises(ServiceError, match="409"):
            client.register_graph("g", multi_area_graph(1))

    def test_bad_update_rejected_and_version_unchanged(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        with pytest.raises(ServiceError):
            client.post_update("g", BatchUpdate().delete("area0", "t0", "nope"))
        assert client.graph_info("g")["version"] == 1

    def test_register_rules_catalog_over_http(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        client.register_rules("mine", RuleSet([phi2()], name="mine"))
        assert any(c["name"] == "mine" for c in client.list_rules())
        assert len(client.detect("g", catalog="mine")) == 1

    def test_session_budget_rejected(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        with pytest.raises(ServiceError, match="budget"):
            client._json(
                "POST", "/graphs/g/sessions", {"catalog": "example", "max_violations": 1}
            )

    def test_close_session(self, service, client):
        client.register_graph("g", multi_area_graph(1))
        state = client.create_session("g", catalog="example")
        assert client.list_sessions()
        client.close_session(state["session"])
        assert client.list_sessions() == []
        with pytest.raises(ServiceError, match="no session"):
            client.session_state(state["session"])

    def test_unknown_route_is_error(self, service, client):
        with pytest.raises(ServiceError, match="no resource"):
            client._json("GET", "/definitely/not/a/route")

    def test_malformed_but_json_bodies_get_a_json_error_not_a_dropped_connection(
        self, service, client
    ):
        # graph document with the wrong shapes inside
        with pytest.raises(ServiceError, match="malformed"):
            client._json("POST", "/graphs/bad", {"nodes": 5, "edges": []})
        with pytest.raises(ServiceError, match="malformed"):
            client._json("POST", "/graphs/bad", {"nodes": [{"id": "a"}], "edges": []})
        # update entries that are not objects
        client.register_graph("g", multi_area_graph(1))
        with pytest.raises(ServiceError, match="malformed"):
            client._json("POST", "/graphs/g/updates", ["notadict"])
        # catalog document with broken rule entries
        with pytest.raises(ServiceError):
            client._json("POST", "/rules/bad", {"rules": [42]})
        # the server survived all of it
        assert client.health()["status"] == "ok"

    def test_unaddressable_resource_names_rejected_at_registration(self, service, client):
        # '/' would never survive the URL router's path split
        with pytest.raises(ServiceError, match="URL path segment"):
            client.register_graph("fig/one", multi_area_graph(1))
        with pytest.raises(ServiceError, match="URL path segment"):
            client.register_rules("my catalog", RuleSet([phi2()]))
        # server-side enforcement too (e.g. CLI --graph preregistration)
        with pytest.raises(ServiceError, match="URL path segment"):
            service.registry.register("fig/one", multi_area_graph(1))
        with pytest.raises(ServiceError, match="URL path segment"):
            service.manager.register_catalog("", RuleSet([phi2()]))

    def test_parallel_engine_over_the_wire(self, service, client):
        client.register_graph("g", multi_area_graph(3))
        reply = client.detect("g", catalog="example", engine="parallel", processors=4)
        assert len(reply) == 3
        assert reply.summary["algorithm"] == "PDect"
        assert reply.summary["processors"] == 4


# ------------------------------------------------- concurrency / isolation


class TestConcurrentUse:
    """N streaming tenants + one writer against a single registered graph."""

    AREAS = 6
    UPDATES = 4
    READERS = 3

    def _expected_by_version(self, graph: Graph, updates: list[BatchUpdate]) -> dict[int, frozenset]:
        """Ground truth: Vio(Σ, G_v) computed locally for every version."""
        detector = Detector([phi2()])
        expected = {1: detector.run(graph).violations.as_set()}
        current = graph
        for index, update in enumerate(updates, start=2):
            current = apply_update(current, update)
            expected[index] = detector.run(current).violations.as_set()
        return expected

    def test_streams_see_one_consistent_version_while_updates_land(self, service, client):
        graph = multi_area_graph(self.AREAS)
        updates = [
            BatchUpdate().delete(f"area{i}", f"t{i}", "populationTotal")
            for i in range(self.UPDATES)
        ]
        expected = self._expected_by_version(graph, updates)
        client.register_graph("areas", graph)
        session = client.create_session("areas", catalog="example")

        stop = threading.Event()
        errors: list[str] = []
        versions_seen: set[int] = set()
        lock = threading.Lock()

        def reader() -> None:
            while not stop.is_set():
                try:
                    reply = client.detect("areas", catalog="example")
                except Exception as exc:  # noqa: BLE001 - collected for the assertion
                    errors.append(f"reader failed: {exc!r}")
                    return
                version = reply.graph_version
                found = frozenset(reply.violations)
                if found != expected[version]:
                    errors.append(
                        f"stream at version {version} saw {len(found)} violations, "
                        f"expected {len(expected[version])} — torn read"
                    )
                with lock:
                    versions_seen.add(version)

        def writer() -> None:
            try:
                for update in updates:
                    time.sleep(0.02)
                    client.post_update("areas", update)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer failed: {exc!r}")

        readers = [threading.Thread(target=reader) for _ in range(self.READERS)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=30)
        time.sleep(0.05)  # let readers observe the final version
        stop.set()
        for thread in readers:
            thread.join(timeout=30)

        assert not errors, errors
        assert versions_seen, "no stream completed"
        # the final version is observable and consistent
        final = client.detect("areas", catalog="example")
        assert final.graph_version == 1 + self.UPDATES
        assert frozenset(final.violations) == expected[final.graph_version]
        # the continuous session tracked every version exactly once, in order
        deltas = client.session_deltas(session["session"])
        assert [d["version"] for d in deltas["deltas"]] == list(range(2, 2 + self.UPDATES))
        state = client.session_state(session["session"])
        assert ViolationSet.from_dict(state).as_set() == expected[1 + self.UPDATES]

    def test_budgets_are_enforced_per_request(self, service, client):
        client.register_graph("areas", multi_area_graph(self.AREAS))
        outcomes: dict[str, object] = {}
        errors: list[str] = []

        def run(tag: str, **kwargs) -> None:
            try:
                outcomes[tag] = client.detect("areas", catalog="example", **kwargs)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{tag}: {exc!r}")

        threads = [
            threading.Thread(target=run, args=("capped1",), kwargs={"max_violations": 1}),
            threading.Thread(target=run, args=("capped2",), kwargs={"max_violations": 2}),
            threading.Thread(target=run, args=("unbounded",)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert not errors, errors
        assert len(outcomes["capped1"]) == 1 and outcomes["capped1"].stopped_early
        assert len(outcomes["capped2"]) == 2 and outcomes["capped2"].stopped_early
        assert len(outcomes["unbounded"]) == self.AREAS
        assert not outcomes["unbounded"].stopped_early

    def test_clean_shutdown(self):
        service = DetectionService(port=0)
        service.manager.register_catalog("example", example_rules())
        service.start()
        client = ServiceClient(service.url, timeout=5)
        client.register_graph("g", multi_area_graph(1))
        assert client.health()["graphs"] == 1
        service.stop()
        assert not service.running
        with pytest.raises(OSError):
            client.health()
        # idempotent and restartable-by-construction: stop again is a no-op
        service.stop()


class TestSinkThreadSafety:
    def test_fanout_and_collecting_sinks_survive_concurrent_notification(self):
        collecting = CollectingSink()
        fan_out = FanOutSink([collecting, CollectingSink()])
        per_thread, threads = 250, 8

        def hammer(worker: int) -> None:
            for i in range(per_thread):
                fan_out.on_violation(Violation("r", ("x",), (f"{worker}-{i}",)), introduced=True)
                fan_out.on_violation(Violation("r", ("x",), (f"{worker}-{i}",)), introduced=False)
            fan_out.on_finish(object())

        workers = [threading.Thread(target=hammer, args=(n,)) for n in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30)

        assert len(collecting.introduced) == per_thread * threads
        assert len(collecting.removed) == per_thread * threads
        assert len(collecting.results) == threads


# ------------------------------------------------------------ CLI `serve`


class TestServeCli:
    def test_serve_subprocess_end_to_end(self, tmp_path):
        """`repro-detect serve` + client over a real socket, SIGINT exits 0."""
        graph_path = tmp_path / "areas.json"
        save_graph(multi_area_graph(2), graph_path)
        rules_path = tmp_path / "rules.json"
        RuleSet([phi2()], name="mine").save(rules_path)

        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--graph",
                f"areas={graph_path}",
                "--catalog",
                f"mine={rules_path}",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline().strip()
            assert ready.startswith("repro-detect: serving on http://"), ready
            client = ServiceClient(ready.split()[-1], timeout=30)
            assert {c["name"] for c in client.list_rules()} >= {"example", "effectiveness", "mine"}
            reply = client.detect("areas", catalog="mine", max_violations=1)
            assert len(reply) == 1 and reply.stopped_early
            update = client.post_update(
                "areas", BatchUpdate().delete("area0", "t0", "populationTotal")
            )
            assert update["version"] == 2
        finally:
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=30)
        assert code == 0


# -------------------------------------------- snapshot GC + delta compaction


class TestRetentionWindow:
    """PR-3 follow-on: bounded snapshots and squashed session deltas."""

    def _update(self, i: int) -> BatchUpdate:
        # flip one area's total back and forth so every update changes ΔVio
        return (
            BatchUpdate()
            .delete("area0", f"t0" if i % 2 == 0 else "t0x", "populationTotal")
            .insert(
                "area0",
                "t0x" if i % 2 == 0 else "t0",
                "populationTotal",
            )
        )

    def test_registry_retains_bounded_snapshot_window(self):
        registry = GraphRegistry(retain_versions=3)
        registry.register("g", multi_area_graph(2))
        registered = registry.get("g")
        assert registered.retained_versions() == [1]
        for i in range(8):
            registry.apply_update("g", self._update(i))
        versions = registered.retained_versions()
        assert len(versions) == 3
        assert versions == [7, 8, 9]
        # retained snapshots are addressable, GC'd ones refuse
        assert registered.snapshot_at(9) is registered.snapshot()[0]
        with pytest.raises(ServiceError, match="no retained snapshot"):
            registered.snapshot_at(2)

    def test_invalid_retention_window_rejected(self):
        with pytest.raises(ServiceError, match="retain_versions"):
            GraphRegistry(retain_versions=0).register("g", multi_area_graph(1))

    def test_long_update_loop_holds_bounded_deltas_and_consistent_state(self):
        """The GC acceptance test: a long-running update loop stays bounded
        while the session's maintained violation set stays exactly right."""
        retain = 4
        service = DetectionService(port=0, retain_versions=retain)
        service.manager.register_catalog("example", example_rules())
        graph = multi_area_graph(3)
        service.registry.register("g", graph)
        request = parse_detect_request({"catalog": "example"})
        session = service.manager.create_session("g", request)
        rounds = 12
        for i in range(rounds):
            service.registry.apply_update("g", self._update(i))
        # bounded: the registry window and the session's delta log
        assert len(service.registry.get("g").retained_versions()) <= retain
        assert session.delta_count() <= retain
        assert session.compacted_through == rounds + 1 - retain
        # consistent: the maintained set equals a fresh batch run
        current, version = service.registry.get("g").snapshot()
        expected = Detector(example_rules(), engine="batch").run(current).violations
        assert session.violations.to_json() == expected.to_json()
        assert session.current_version == version
        # the squashed prefix plus the retained tail reproduces every change
        records = session.deltas_since(session.base_version)
        assert records[0]["squashed"] is True
        rebuilt = session_base = Detector(example_rules(), engine="batch").run(graph).violations
        from repro.core.violations import ViolationDelta

        for record in records:
            rebuilt = rebuilt.apply_delta(ViolationDelta.from_dict(record))
        assert rebuilt.to_json() == expected.to_json()
        assert session_base is not rebuilt
        # state document reports the compaction point
        assert session.state_document()["compacted_through"] == session.compacted_through

    def test_deltas_since_inside_window_unchanged(self):
        service = DetectionService(port=0, retain_versions=4)
        service.manager.register_catalog("example", example_rules())
        service.registry.register("g", multi_area_graph(2))
        session = service.manager.create_session("g", parse_detect_request({"catalog": "example"}))
        for i in range(3):
            service.registry.apply_update("g", self._update(i))
        records = session.deltas_since(1)
        assert [r["version"] for r in records] == [2, 3, 4]
        assert all("squashed" not in r for r in records)


class TestSessionPlanReuse:
    def test_plans_reused_across_versions_until_drift(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCH_PLANNER", "on")
        service = DetectionService(port=0)
        service.manager.register_catalog("example", example_rules())
        service.registry.register("g", multi_area_graph(3))
        session = service.manager.create_session("g", parse_detect_request({"catalog": "example"}))
        assert session.plan_compilations == 1
        # small flip-flop updates stay within the drift tolerance
        delta_a = BatchUpdate().delete("area0", "t0", "populationTotal")
        delta_b = BatchUpdate().insert("area0", "t0", "populationTotal")
        for _ in range(3):
            service.registry.apply_update("g", delta_a)
            service.registry.apply_update("g", delta_b)
        assert session.plan_compilations == 1
        # a bulk insert beyond the tolerance invalidates the cached plans
        grow = BatchUpdate()
        for i in range(30):
            grow.insert(
                f"extra{i}",
                f"extra{i + 1}",
                "link",
                source_payload=NodePayload("filler", {}),
                target_payload=NodePayload("filler", {}),
            )
        service.registry.apply_update("g", grow)
        assert session.plan_compilations == 2


class TestCompactionCatchUpSafety:
    """Regressions for the review findings on the GC/retention feature."""

    def _flip(self, i: int) -> BatchUpdate:
        return (
            BatchUpdate()
            .delete("area0", "t0" if i % 2 == 0 else "t0x", "populationTotal")
            .insert("area0", "t0x" if i % 2 == 0 else "t0", "populationTotal")
        )

    def test_mid_window_catch_up_refused_after_squash(self):
        """A client inside the squashed window cannot be served a net delta
        (remove/reintroduce pairs have cancelled out of it) — refuse loudly."""
        service = DetectionService(port=0, retain_versions=2)
        service.manager.register_catalog("example", example_rules())
        service.registry.register("g", multi_area_graph(2))
        session = service.manager.create_session("g", parse_detect_request({"catalog": "example"}))
        for i in range(6):
            service.registry.apply_update("g", self._flip(i))
        assert session.compacted_through is not None
        mid_window = session.base_version + 1
        assert mid_window < session.compacted_through
        with pytest.raises(ServiceError, match="no longer reconstructible"):
            session.deltas_since(mid_window)
        # catch-up from the base version and from inside the retained tail
        # both still reproduce the server's maintained set exactly
        from repro.core.violations import ViolationDelta

        current, _ = service.registry.get("g").snapshot()
        expected = Detector(example_rules(), engine="batch").run(current).violations
        base = Detector(example_rules(), engine="batch").run(multi_area_graph(2)).violations
        rebuilt = base
        for record in session.deltas_since(session.base_version):
            rebuilt = rebuilt.apply_delta(ViolationDelta.from_dict(record))
        assert rebuilt.to_json() == expected.to_json()
        tail_records = session.deltas_since(session.compacted_through)
        assert all("squashed" not in r for r in tail_records)

    def test_service_rejects_conflicting_registry_retention(self):
        registry = GraphRegistry()  # no retention window of its own
        with pytest.raises(ServiceError, match="conflicts with the supplied registry"):
            DetectionService(port=0, registry=registry, retain_versions=3)
        # matching windows are accepted
        matching = GraphRegistry(retain_versions=3)
        service = DetectionService(port=0, registry=matching, retain_versions=3)
        assert service.manager.retain_versions == 3


class TestBatchDiffPlannerOption:
    def test_use_planner_false_pins_static_pipeline(self, monkeypatch):
        """BatchDiff must honour DetectionOptions(use_planner=...) even when
        the environment switch disagrees (the planner-off oracle contract)."""
        monkeypatch.setenv("REPRO_MATCH_PLANNER", "on")
        graph = multi_area_graph(2)
        delta = BatchUpdate().delete("area0", "t0", "populationTotal")
        from repro.detect.session import DetectionOptions

        compiled = []
        off = Detector(
            example_rules(), engine="batch", options=DetectionOptions(use_planner=False)
        )
        monkeypatch.setattr(
            type(off), "compile_plans",
            lambda self, g, _orig=type(off).compile_plans: compiled.append(1) or _orig(self, g),
        )
        result_off = off.run_incremental(graph, delta)
        assert compiled == [], "planner-off BatchDiff must not compile plans"
        on = Detector(
            example_rules(), engine="batch", options=DetectionOptions(use_planner=True)
        )
        result_on = on.run_incremental(graph, delta)
        assert result_on.removed().to_json() == result_off.removed().to_json()
        # planner-off costs follow the static pipeline, which here scans more
        assert result_off.cost >= result_on.cost
