"""Tests for graph repairing with NGDs (the future-work extension, Section 8)."""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import phi2, phi3
from repro.core.ngd import NGD, RuleSet
from repro.core.repair import apply_repairs, plan_repairs, repair_graph
from repro.core.validation import find_violations, graph_satisfies
from repro.core.violations import ViolationSet
from repro.datasets.figure1 import figure1_g2, figure1_g3
from repro.graph.pattern import Pattern


class TestRepairFigure1:
    def test_repairing_g2_fixes_the_population_sum(self):
        graph = figure1_g2()
        rules = RuleSet([phi2()])
        repaired, plan = repair_graph(graph, rules)
        assert plan.is_complete()
        assert plan.repairs  # something was changed
        assert graph_satisfies(repaired, rules)
        # the original graph is untouched
        assert not graph_satisfies(graph, rules)

    def test_g2_repair_is_minimal(self):
        graph = figure1_g2()
        _, plan = repair_graph(graph, RuleSet([phi2()]))
        # 600 + 722 = 1322 vs recorded 1572: the cheapest integral fix costs 250
        assert plan.total_cost() == pytest.approx(250)

    def test_repairing_g3_fixes_the_rank_order(self):
        graph = figure1_g3()
        rules = RuleSet([phi3()])
        repaired, plan = repair_graph(graph, rules)
        assert plan.is_complete()
        assert graph_satisfies(repaired, rules)


class TestRepairMechanics:
    @pytest.fixture
    def order_rule(self, knows_pattern) -> NGD:
        return NGD.from_text(knows_pattern, "", "x.val >= y.val", name="val_order")

    def test_plan_only_touches_conclusion_attributes(self, triangle_graph, order_rule):
        rules = RuleSet([order_rule])
        violations = find_violations(triangle_graph, rules)
        plan = plan_repairs(triangle_graph, rules, violations)
        assert plan.is_complete()
        touched = {(repair.node, repair.attribute) for repair in plan.repairs}
        assert touched <= {("a", "val"), ("b", "val")}
        repaired = apply_repairs(triangle_graph, plan)
        assert graph_satisfies(repaired, rules)

    def test_apply_in_place(self, triangle_graph, order_rule):
        rules = RuleSet([order_rule])
        plan = plan_repairs(triangle_graph, rules, find_violations(triangle_graph, rules))
        result = apply_repairs(triangle_graph, plan, in_place=True)
        assert result is triangle_graph
        assert graph_satisfies(triangle_graph, rules)

    def test_empty_violation_set_plans_nothing(self, triangle_graph, order_rule):
        plan = plan_repairs(triangle_graph, RuleSet([order_rule]), ViolationSet())
        assert plan.repairs == []
        assert plan.is_complete()

    def test_integral_repairs_by_default(self, triangle_graph, knows_pattern):
        rule = NGD.from_text(knows_pattern, "", "x.val + y.val = 31", name="odd_sum")
        rules = RuleSet([rule])
        repaired, plan = repair_graph(triangle_graph, rules)
        assert plan.is_complete()
        assert all(isinstance(repair.new_value, int) for repair in plan.repairs)
        assert graph_satisfies(repaired, rules)

    def test_fractional_repairs_when_requested(self, triangle_graph, knows_pattern):
        rule = NGD.from_text(knows_pattern, "", "x.val + y.val = 31", name="odd_sum")
        rules = RuleSet([rule])
        repaired, plan = repair_graph(triangle_graph, rules, integral=False)
        assert plan.is_complete()
        assert graph_satisfies(repaired, rules)

    def test_contradictory_conclusions_are_unrepairable(self, triangle_graph, knows_pattern):
        rules = RuleSet(
            [
                NGD.from_text(knows_pattern, "", "x.val = 1", name="one"),
                NGD.from_text(knows_pattern, "", "x.val = 2", name="two"),
            ]
        )
        violations = find_violations(triangle_graph, rules)
        plan = plan_repairs(triangle_graph, rules, violations)
        assert not plan.is_complete()
        assert not plan.repairs

    def test_disequality_conclusions_are_reported_unrepairable(self, triangle_graph, knows_pattern):
        rule = NGD.from_text(knows_pattern, "", "x.val != 10", name="ne_rule")
        rules = RuleSet([rule])
        violations = find_violations(triangle_graph, rules)
        assert violations  # x = a has val 10
        plan = plan_repairs(triangle_graph, rules, violations)
        assert len(plan.unrepairable) == len(violations)

    def test_repair_then_redetect_loop(self, triangle_graph, order_rule):
        """The classic clean loop: detect → repair → re-detect finds nothing."""
        rules = RuleSet([order_rule])
        repaired, _ = repair_graph(triangle_graph, rules)
        assert len(find_violations(repaired, rules)) == 0
