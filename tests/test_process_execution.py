"""Cross-process parity suite for ``execution="processes"``.

The contract the ISSUE names: the real multi-process backend must produce
**byte-identical** ``ViolationSet``s to the serial kernel and the cluster
simulator — across storage backends {dict, indexed, csr} and with the
match planner on and off — while honouring ``DetectionBudget`` early
cancellation and the ``ViolationSink`` streaming contract under real
concurrency.  Plan persistence (``save_plans`` / ``load_plans`` /
``Detector(plans_file=...)``) and the service's bounded detection job
pool (429 admission control) ride along.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g2
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import (
    CallbackSink,
    CollectingSink,
    DetectionOptions,
    Detector,
)
from repro.detect.parallel.balancing import should_split, should_split_planned
from repro.detect.parallel.executor import ExecutionRuntime, resolve_start_method
from repro.errors import ExecutionError, PoolSaturatedError, ServiceError, SessionError
from repro.graph.sharded import ShardedStore
from repro.graph.updates import UpdateGenerator
from repro.matching.plan import (
    MatchPlan,
    compile_plans,
    load_plans,
    plans_from_document,
    plans_to_document,
    save_plans,
)
from repro.service import DetectionService, ServiceClient, parse_detect_request
from repro.service.jobs import DetectionJobPool


@pytest.fixture(scope="module")
def kb_graph():
    config = KBConfig(
        name="kb-processes",
        num_entities=150,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=2.0,
        error_rate=0.08,
        seed=8,
        hub_link_fraction=0.4,
        num_hubs=2,
    )
    return knowledge_graph(config)


@pytest.fixture(scope="module")
def kb_rules(kb_graph):
    return benchmark_rules(kb_graph, count=12, max_diameter=4, seed=2)


@pytest.fixture(scope="module")
def kb_delta(kb_graph):
    # seed 21 / size 80 introduces violations (asserted below), so the
    # incremental parity legs exercise a non-trivial ΔVio
    return UpdateGenerator(seed=21).generate(kb_graph, 80, insert_ratio=0.5)


def _options(**overrides) -> DetectionOptions:
    return DetectionOptions(execution="processes", **overrides)


# -------------------------------------------------------------- batch parity


class TestBatchParity:
    @pytest.mark.parametrize("backend", ("dict", "indexed", "csr"))
    @pytest.mark.parametrize("use_planner", (True, False))
    def test_byte_identical_across_backends_and_planner(
        self, kb_graph, kb_rules, backend, use_planner
    ):
        graph = kb_graph.with_backend(backend)
        serial = Detector(
            kb_rules, engine="batch", options=DetectionOptions(use_planner=use_planner)
        ).run(graph)
        simulated = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=DetectionOptions(use_planner=use_planner),
        ).run(graph)
        processes = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=_options(use_planner=use_planner),
        ).run(graph)
        assert len(serial.violations) > 0
        assert (
            processes.violations.to_json()
            == simulated.violations.to_json()
            == serial.violations.to_json()
        )
        assert processes.algorithm == "PDect"
        assert processes.processors == 4
        assert not processes.stopped_early

    def test_figure1_single_process(self, kb_rules):
        graph = figure1_g2()
        serial = Detector(example_rules(), engine="batch").run(graph)
        processes = Detector(
            example_rules(), engine="parallel", processors=1, options=_options()
        ).run(graph)
        assert processes.violations.to_json() == serial.violations.to_json()

    def test_worker_traces_account_work(self, kb_graph, kb_rules):
        result = Detector(
            kb_rules, engine="parallel", processors=4, options=_options()
        ).run(kb_graph)
        assert len(result.worker_traces) == 4
        assert sum(t.work_units_processed for t in result.worker_traces) > 0
        assert result.cost > 0

    def test_execution_processes_implies_parallel_engine(self, kb_graph, kb_rules):
        detector = Detector(kb_rules, options=_options())
        result = detector.run(kb_graph)
        assert result.algorithm == "PDect"

    def test_unknown_execution_mode_is_refused(self, kb_rules):
        with pytest.raises(SessionError):
            Detector(kb_rules, options=DetectionOptions(execution="quantum"))

    @pytest.mark.parametrize("engine", ("batch", "incremental"))
    def test_processes_with_serial_engine_is_refused(self, kb_rules, engine):
        # engine='batch'/'incremental' are single-process by definition; a
        # session claiming execution='processes' with them would silently
        # measure serial numbers, so it is rejected up front
        with pytest.raises(SessionError):
            Detector(kb_rules, engine=engine, options=_options())

    def test_unknown_start_method_is_refused(self):
        with pytest.raises(ExecutionError):
            resolve_start_method("not-a-method")


# -------------------------------------------------------- incremental parity


class TestIncrementalParity:
    @pytest.mark.parametrize("backend", ("dict", "indexed"))
    @pytest.mark.parametrize("use_planner", (True, False))
    def test_delta_identical_across_backends_and_planner(
        self, kb_graph, kb_rules, kb_delta, backend, use_planner
    ):
        graph = kb_graph.with_backend(backend)
        incremental = Detector(
            kb_rules, engine="incremental", options=DetectionOptions(use_planner=use_planner)
        ).run_incremental(graph, kb_delta)
        simulated = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=DetectionOptions(use_planner=use_planner),
        ).run_incremental(graph, kb_delta)
        processes = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=_options(use_planner=use_planner),
        ).run_incremental(graph, kb_delta)
        assert incremental.delta.total_changes() > 0
        assert processes.delta == simulated.delta == incremental.delta
        assert processes.algorithm == "PIncDect"
        assert processes.neighborhood_size and processes.neighborhood_size > 0

    def test_policy_variants_identical(self, kb_graph, kb_rules, kb_delta):
        from repro.detect.parallel.balancing import BalancingPolicy

        expected = Detector(kb_rules, engine="incremental").run_incremental(kb_graph, kb_delta)
        for policy in (BalancingPolicy.hybrid(), BalancingPolicy.none()):
            result = Detector(
                kb_rules, engine="parallel", processors=4, options=_options(policy=policy)
            ).run_incremental(kb_graph, kb_delta)
            assert result.delta == expected.delta


# ----------------------------------------------------- budgets under processes


class TestBudgetCancellation:
    def test_max_violations_cancels_across_processes(self, kb_graph, kb_rules):
        result = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=_options(max_violations=3),
        ).run(kb_graph)
        assert len(result.violations) <= 3
        assert result.stopped_early
        assert result.stop_reason == "max_violations"

    def test_max_cost_cancels_across_processes(self, kb_graph, kb_rules):
        full = Detector(kb_rules, engine="parallel", processors=4, options=_options()).run(kb_graph)
        capped = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=_options(max_cost=full.cost / 10),
        ).run(kb_graph)
        assert capped.stopped_early
        assert capped.stop_reason == "max_cost"
        # every reported violation is a true member of the full answer
        assert capped.violations.as_set() <= full.violations.as_set()

    def test_budget_result_violations_are_exact(self, kb_graph, kb_rules):
        full = Detector(kb_rules, engine="batch").run(kb_graph)
        capped = Detector(
            kb_rules, engine="parallel", processors=2, options=_options(max_violations=2)
        ).run(kb_graph)
        assert capped.violations.as_set() <= full.violations.as_set()


# ------------------------------------------------------------- sink streaming


class TestSinkStreaming:
    def test_sink_sees_yielded_order_and_finish(self, kb_graph, kb_rules):
        streamed: list = []
        observed: list = []
        collecting = CollectingSink()
        detector = Detector(
            kb_rules,
            engine="parallel",
            processors=4,
            options=_options(),
            sinks=[CallbackSink(lambda v, introduced: observed.append(v)), collecting],
        )
        for violation in detector.stream(kb_graph):
            streamed.append(violation)
        assert streamed == observed  # sink notified right before each yield
        assert collecting.violations.as_set() == set(streamed)
        assert len(collecting.results) == 1  # on_finish exactly once
        serial = Detector(kb_rules, engine="batch").run(kb_graph)
        assert set(streamed) == serial.violations.as_set()

    def test_stream_can_be_abandoned(self, kb_graph, kb_rules):
        detector = Detector(kb_rules, engine="parallel", processors=4, options=_options())
        stream = detector.stream(kb_graph)
        first = next(stream)
        stream.close()  # generator close must terminate the worker pool
        assert first is not None


# ------------------------------------------------------------ plan-guided split


class TestPlanGuidedSplitting:
    def test_subsumes_raw_predicate(self):
        # whenever the raw test splits, the planned test (workload = max of
        # estimate and actual) splits too
        for adjacency in (10, 100, 1000, 10_000):
            for estimate in (0.0, 5.0, 500.0, 1e6):
                if should_split(adjacency, 1, 8, 60.0):
                    assert should_split_planned(estimate, adjacency, 1, 8, 60.0)

    def test_large_subtree_small_scan_splits(self):
        # raw predicate refuses (scan of 8 is tiny); the subtree estimate knows better
        assert not should_split(8, 1, 8, 60.0)
        assert should_split_planned(10_000.0, 8, 1, 8, 60.0)

    def test_single_processor_never_splits(self):
        assert not should_split_planned(1e9, 1000, 0, 1, 60.0)

    def test_simulated_results_unchanged_by_decision_source(self, kb_graph, kb_rules):
        # the split decision only moves simulated charges around — the
        # violations of planner-on and planner-off runs stay byte-identical
        on = Detector(
            kb_rules, engine="parallel", processors=8, options=DetectionOptions(use_planner=True)
        ).run(kb_graph)
        off = Detector(
            kb_rules, engine="parallel", processors=8, options=DetectionOptions(use_planner=False)
        ).run(kb_graph)
        assert on.violations.to_json() == off.violations.to_json()


# ------------------------------------------------------------ plan persistence


class TestPlanPersistence:
    def test_save_load_round_trip(self, kb_graph, kb_rules, tmp_path):
        plans = compile_plans(kb_graph, kb_rules)
        path = tmp_path / "plans.json"
        save_plans(plans, path)
        loaded = load_plans(path, kb_rules)
        assert [p.to_dict() for p in loaded] == [p.to_dict() for p in plans]

    def test_document_round_trip(self, kb_graph, kb_rules):
        plans = compile_plans(kb_graph, kb_rules)
        document = json.loads(json.dumps(plans_to_document(plans)))
        rebuilt = plans_from_document(document, kb_rules)
        for original, copy in zip(plans, rebuilt):
            assert copy.order == original.order
            assert copy.estimated_unit_cost(0) == original.estimated_unit_cost(0)
            assert copy.statistics.to_dict() == original.statistics.to_dict()

    def test_plan_from_dict_checks_rule(self, kb_graph, kb_rules):
        from repro.errors import SerializationError

        plans = compile_plans(kb_graph, kb_rules)
        rules = list(kb_rules)
        with pytest.raises(SerializationError):
            MatchPlan.from_dict(plans[0].to_dict(), rules[1])

    def test_detector_plans_file_matches_compiled(self, kb_graph, kb_rules, tmp_path):
        path = tmp_path / "plans.json"
        save_plans(compile_plans(kb_graph, kb_rules), path)
        from_file = Detector(kb_rules, engine="batch", plans_file=str(path)).run(kb_graph)
        compiled = Detector(kb_rules, engine="batch").run(kb_graph)
        assert from_file.violations.to_json() == compiled.violations.to_json()
        assert from_file.cost == compiled.cost

    def test_process_workers_accept_plan_documents(self, kb_graph, kb_rules):
        # the spawn payload ships plans as documents; reconstruct one and
        # check the runtime round-trip the workers perform
        plans = compile_plans(kb_graph, kb_rules)
        runtime = ExecutionRuntime(
            rules=list(kb_rules),
            plans=plans,
            use_literal_pruning=True,
            shards=ShardedStore.single(kb_graph),
        )
        import tempfile

        payload = runtime.payload(tempfile.mkdtemp(prefix="repro-test-spool-"))
        rebuilt = ExecutionRuntime.from_payload(payload)
        assert [p.order for p in rebuilt.plans] == [p.order for p in plans]
        assert [r.name for r in rebuilt.rules] == [r.name for r in kb_rules]

    def test_spawn_start_method_parity(self, kb_graph, kb_rules):
        serial = Detector(kb_rules, engine="batch").run(kb_graph)
        spawned = Detector(
            kb_rules,
            engine="parallel",
            processors=2,
            options=_options(start_method="spawn"),
        ).run(kb_graph)
        assert spawned.violations.to_json() == serial.violations.to_json()


# ------------------------------------------------------------ service job pool


class TestDetectionJobPool:
    def test_admission_and_release(self):
        pool = DetectionJobPool(max_jobs=1)
        release = threading.Event()

        def slow():
            yield {"type": "violation"}
            release.wait(timeout=5)
            yield {"type": "summary"}

        stream = pool.run_stream(slow())
        assert next(stream) == {"type": "violation"}
        with pytest.raises(PoolSaturatedError):
            pool.run_stream(iter([]))
        assert pool.active_jobs() == 1
        release.set()
        assert [r["type"] for r in stream] == ["summary"]
        deadline = time.monotonic() + 5
        while pool.active_jobs() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.active_jobs() == 0
        list(pool.run_stream(iter([{"type": "summary"}])))  # slot is free again

    def test_consumer_close_cancels_producer(self):
        pool = DetectionJobPool(max_jobs=1)
        produced = []

        def endless():
            i = 0
            while True:
                produced.append(i)
                yield {"type": "violation", "i": i}
                i += 1

        stream = pool.run_stream(endless())
        next(stream)
        stream.close()
        deadline = time.monotonic() + 5
        while pool.active_jobs() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.active_jobs() == 0  # slot reclaimed after cancellation

    def test_producer_error_becomes_error_record(self):
        pool = DetectionJobPool(max_jobs=2)

        def broken():
            yield {"type": "violation"}
            raise RuntimeError("kernel exploded")

        records = list(pool.run_stream(broken()))
        assert records[0]["type"] == "violation"
        assert records[-1]["type"] == "error"
        assert "kernel exploded" in records[-1]["error"]

    def test_rejects_invalid_size(self):
        with pytest.raises(ServiceError):
            DetectionJobPool(max_jobs=0)


class TestServiceAdmissionControl:
    @pytest.fixture
    def service(self):
        svc = DetectionService(port=0, max_jobs=2)
        svc.manager.register_catalog("example", example_rules())
        svc.registry.register("fig1", figure1_g2())
        with svc:
            yield svc

    def test_health_reports_pool(self, service):
        client = ServiceClient(service.url)
        health = client.health()
        assert health["jobs"] == {"active": 0, "max": 2}

    def test_saturated_pool_returns_429(self, service):
        client = ServiceClient(service.url)
        # hold both slots so the next request must be refused up front
        assert service.manager.job_pool._slots.acquire(blocking=False)
        assert service.manager.job_pool._slots.acquire(blocking=False)
        try:
            with pytest.raises(ServiceError) as excinfo:
                list(client.stream_detect("fig1", catalog="example"))
            assert "429" in str(excinfo.value)
            assert "saturated" in str(excinfo.value)
        finally:
            service.manager.job_pool._slots.release()
            service.manager.job_pool._slots.release()
        # pool drained: the same request succeeds now
        records = list(client.stream_detect("fig1", catalog="example"))
        assert records[-1]["type"] == "summary"

    def test_process_execution_over_http(self, service):
        client = ServiceClient(service.url)
        simulated = client.detect("fig1", catalog="example")
        processes = client.detect(
            "fig1", catalog="example", engine="parallel", processors=2, execution="processes"
        )
        assert {str(v) for v in processes.violations} == {str(v) for v in simulated.violations}
        assert processes.summary["algorithm"] == "PDect"

    def test_request_validates_execution(self):
        with pytest.raises(ServiceError):
            parse_detect_request({"catalog": "example", "execution": "warp"})
        request = parse_detect_request({"catalog": "example", "execution": "processes"})
        assert request.execution == "processes"

    def test_kernel_start_failure_maps_to_400(self, service, monkeypatch):
        # a detection that fails before streaming anything (here: a bogus
        # start method raising at kernel start on the job thread) must come
        # back as a JSON error response, not 200 + an in-band error record
        monkeypatch.setenv("REPRO_EXECUTION_START_METHOD", "bogus")
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            list(
                client.stream_detect(
                    "fig1", catalog="example", engine="parallel",
                    processors=2, execution="processes",
                )
            )
        assert "400" in str(excinfo.value)
        assert "failed to start" in str(excinfo.value)
        deadline = time.monotonic() + 5
        while service.manager.job_pool.active_jobs() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.manager.job_pool.active_jobs() == 0  # slot reclaimed
