"""Compiled rule kernels: closure-compiled schedules vs the interpreted path.

Three layers are covered:

* literal-level parity — a seeded random generator produces arithmetic
  expression shapes (nested ops, division, absolute value, constants),
  graphs with missing attributes, non-numeric values and tuple node ids;
  the compiled closure's verdict must equal ``Literal.holds_for`` on every
  sample, in both the slot-based and the ``direct`` (unary-filter) modes;
* end-to-end parity — ``DetectionOptions(compiled=...)`` on/off must
  produce byte-identical ``ViolationSet``\\ s AND identical
  ``MatchStatistics`` across every store backend, planner on/off, serial
  and multi-process execution (spawn workers recompile schedules from the
  shipped plan document), and under adaptive suffix replanning;
* machinery — ``MatchPlan`` stays picklable after compiling schedules
  (closures are excluded from its state), the ``REPRO_COMPILED_EVAL``
  kill switch is honoured, and the CSR sorted-rank intersection returns
  exactly the set-intersection survivors in ascending rank order.
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro.core.ngd import NGD, RuleSet
from repro.detect import DetectionOptions, Detector
from repro.expr.expressions import (
    AbsoluteValue,
    Add,
    Divide,
    EvaluationError,
    Multiply,
    Negate,
    Subtract,
    const,
    var,
)
from repro.expr.literals import COMPARISON_OPS, Comparison, Literal, LiteralSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern
from repro.graph.updates import BatchUpdate, EdgeDeletion, EdgeInsertion
from repro.matching.candidates import MatchStatistics
from repro.matching.compiled import (
    COMPILED_ENV,
    CompiledSchedule,
    compile_literal,
    compiled_enabled,
    csr_sorted_intersection,
    resolve_compiled,
)
from repro.matching.matchn import HomomorphismMatcher
from repro.matching.plan import compile_plans

BACKENDS = ("dict", "indexed", "csr", "persistent")


# ------------------------------------------------------------ literal parity


def _random_expression(rng: random.Random, variables: list[str], depth: int):
    """A random arithmetic expression over ``variables`` (attrs a0..a2)."""
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.35:
            return const(rng.choice([0, 1, 2, 3, 7, -5, 100]))
        return var(rng.choice(variables), f"a{rng.randrange(3)}")
    shape = rng.randrange(6)
    left = _random_expression(rng, variables, depth - 1)
    right = _random_expression(rng, variables, depth - 1)
    if shape == 0:
        return Add(left, right)
    if shape == 1:
        return Subtract(left, right)
    if shape == 2:
        return Multiply(left, right)
    if shape == 3:
        return Divide(left, right)
    if shape == 4:
        return AbsoluteValue(left)
    return Negate(left)


def _random_attrs(rng: random.Random) -> dict:
    attrs = {}
    for name in ("a0", "a1", "a2"):
        roll = rng.random()
        if roll < 0.25:
            continue  # missing attribute
        if roll < 0.35:
            attrs[name] = rng.choice(["text", None, [1]])  # non-numeric
        elif roll < 0.5:
            attrs[name] = 0  # division-by-zero bait
        else:
            attrs[name] = rng.randint(-20, 20)
    return attrs


def _outcome(thunk):
    """Verdict or raised-exception type, so "both crash the same way" counts
    as parity (e.g. ``Fraction('text')`` raises ValueError on both paths)."""
    try:
        return ("ok", thunk())
    except Exception as error:  # noqa: BLE001 - parity on exception *type*
        return ("raise", type(error))


def test_randomized_literal_parity_slot_mode():
    rng = random.Random(0xC0DE)
    variables = ["x", "y", "z"]
    slot_of = {"x": 0, "y": 1, "z": 2}
    checked = 0
    for _ in range(400):
        literal = Literal(
            _random_expression(rng, variables, rng.randrange(4)),
            rng.choice(list(Comparison)),
            _random_expression(rng, variables, rng.randrange(4)),
        )
        try:
            check = compile_literal(literal, slot_of)
        except Exception:
            pytest.fail(f"compile_literal raised for {literal}")
        for _ in range(5):
            slots = [_random_attrs(rng) for _ in variables]
            assignment = {
                (variable, key): value
                for variable, slot in slot_of.items()
                for key, value in slots[slot].items()
                if (variable, key) in literal.variables()
            }
            complete = len(assignment) == len(literal.variables())
            expected = _outcome(lambda: complete and literal.holds_for(assignment))
            got = _outcome(lambda: check(slots))
            assert got == expected, (literal, slots)
            checked += 1
    assert checked == 2000


def test_randomized_literal_parity_direct_mode():
    rng = random.Random(0xD00D)
    checked = 0
    for _ in range(300):
        literal = Literal(
            _random_expression(rng, ["x"], rng.randrange(3)),
            rng.choice(list(Comparison)),
            _random_expression(rng, ["x"], rng.randrange(3)),
        )
        check = compile_literal(literal, {"x": 0}, direct=True)
        for _ in range(4):
            attrs = _random_attrs(rng)
            assignment = {
                pair: attrs[pair[1]] for pair in literal.variables() if pair[1] in attrs
            }
            complete = len(assignment) == len(literal.variables())
            expected = _outcome(lambda: complete and literal.holds_for(assignment))
            got = _outcome(lambda: check(attrs))
            assert got == expected, (literal, attrs)
            checked += 1
    assert checked == 1200


def test_constant_folding_and_poisoning():
    # fully constant literal folds to its verdict
    check = compile_literal(Literal(const(3), Comparison.LT, const(5)), {})
    assert check([]) is True
    check = compile_literal(Literal(const(3), Comparison.GT, const(5)), {})
    assert check([]) is False
    # a constant subtree that raises poisons the literal to constant-False,
    # matching the interpreted evaluator (holds_for -> False on every input)
    poisoned = Literal(Divide(const(1), const(0)), Comparison.EQ, var("x", "a0"))
    check = compile_literal(poisoned, {"x": 0})
    assert check([{"a0": 1}]) is False
    assert not poisoned.holds_for({("x", "a0"): 1})


def test_exact_arithmetic_division():
    # 1/3 must stay an exact Fraction on both paths: 0.333... float would
    # make (1/3)*3 == 1 fail under binary rounding
    literal = Literal(
        Multiply(Divide(const(1), const(3)), const(3)), Comparison.EQ, const(1)
    )
    check = compile_literal(literal, {})
    assert check([]) is True
    assert literal.holds_for({})


def test_comparison_dispatch_table_matches_enum():
    assert set(COMPARISON_OPS) == set(Comparison)
    for comparison in Comparison:
        assert comparison.holds(1, 2) == COMPARISON_OPS[comparison](1, 2)
        assert comparison.holds(2, 1) == COMPARISON_OPS[comparison](2, 1)
        assert comparison.holds(1, 1) == COMPARISON_OPS[comparison](1, 1)


# --------------------------------------------------------- workload fixtures


def _literal_heavy_rules() -> RuleSet:
    pattern = Pattern("Q")
    pattern.add_node("x", "product")
    pattern.add_node("y", "product")
    pattern.add_node("z", "seller")
    pattern.add_edge("x", "y", "variant")
    pattern.add_edge("z", "x", "sells")
    premise = LiteralSet(
        [
            Literal(var("x", "price"), Comparison.GT, const(0)),
            Literal(var("y", "price"), Comparison.GT, const(0)),
            Literal(var("z", "rating"), Comparison.GE, const(1)),
            Literal(
                Add(var("x", "price"), var("y", "price")),
                Comparison.LE,
                const(500),
            ),
        ]
    )
    conclusion = LiteralSet(
        [Literal(var("x", "price"), Comparison.LE, Multiply(var("y", "price"), const(2)))]
    )
    return RuleSet([NGD(pattern, premise, conclusion, name="price-consistency")])


def _product_graph(seed: int = 11, products: int = 220, sellers: int = 30) -> Graph:
    rng = random.Random(seed)
    graph = Graph(name="compiled-eval")
    for i in range(products):
        attrs = {}
        roll = rng.random()
        if roll < 0.82:
            attrs["price"] = rng.randint(1, 300)
        elif roll < 0.9:
            attrs["price"] = "n/a"  # non-numeric: literal must reject, not raise
        # else: missing price (partially-attributed node)
        # tuple node ids exercise non-string hashables end to end
        graph.add_node(("p", i), "product", attrs)
    for i in range(sellers):
        attrs = {"rating": rng.randint(0, 5)} if rng.random() < 0.85 else {}
        graph.add_node(("s", i), "seller", attrs)
    seen = set()
    for _ in range(products * 3):
        edge = (rng.randrange(products), rng.randrange(products))
        if edge[0] == edge[1] or edge in seen:
            continue
        seen.add(edge)
        graph.add_edge(("p", edge[0]), ("p", edge[1]), "variant")
    for _ in range(sellers * 12):
        edge = (rng.randrange(sellers), rng.randrange(products))
        if edge in seen:
            continue
        seen.add(edge)
        graph.add_edge(("s", edge[0]), ("p", edge[1]), "sells")
    return graph


@pytest.fixture(scope="module")
def product_graph() -> Graph:
    return _product_graph()


@pytest.fixture(scope="module")
def heavy_rules() -> RuleSet:
    return _literal_heavy_rules()


def _stats_tuple(stats: MatchStatistics) -> tuple:
    return (
        stats.candidates_examined,
        stats.expansions,
        stats.edge_checks,
        stats.literal_evaluations,
        stats.matches_emitted,
    )


def _run(graph, rules, *, compiled, backend=None, engine="batch", processors=None, **options):
    detector = Detector(
        rules,
        engine=engine,
        processors=processors,
        store=backend,
        options=DetectionOptions(compiled=compiled, **options),
    )
    return detector.run(graph)


# ------------------------------------------------------- end-to-end parity


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("use_planner", [True, False])
def test_batch_parity_across_backends(product_graph, heavy_rules, backend, use_planner, tmp_path):
    kwargs = {}
    if backend == "persistent":
        os.environ.setdefault("REPRO_PERSISTENT_DIR", str(tmp_path))
    on = _run(product_graph, heavy_rules, compiled=True, backend=backend, use_planner=use_planner)
    off = _run(product_graph, heavy_rules, compiled=False, backend=backend, use_planner=use_planner)
    assert on.violations.to_json() == off.violations.to_json()
    assert on.violation_count() > 0
    assert _stats_tuple(on.stats) == _stats_tuple(off.stats)
    assert on.cost == off.cost


@pytest.mark.parametrize("execution", ["simulated", "processes"])
def test_parallel_parity(product_graph, heavy_rules, execution):
    on = _run(
        product_graph, heavy_rules, compiled=True, engine="parallel",
        processors=4, execution=execution,
    )
    off = _run(
        product_graph, heavy_rules, compiled=False, engine="parallel",
        processors=4, execution=execution,
    )
    assert on.violations.to_json() == off.violations.to_json()
    assert on.violation_count() > 0


def test_spawn_workers_recompile_parity(heavy_rules):
    # spawn workers get the plan document only (closures don't pickle);
    # they must rebuild compiled schedules and still match byte for byte.
    # (string node ids: the spawn path spools graphs through JSON, which
    # does not round-trip tuple ids — a pre-existing spool limitation)
    graph = _product_graph(seed=7, products=80, sellers=12)
    flat = Graph(name="spawn-parity")
    for node in graph.nodes():
        flat.add_node("-".join(map(str, node.id)), node.label, dict(node.attributes))
    for edge in graph.edges():
        flat.add_edge(
            "-".join(map(str, edge.source)), "-".join(map(str, edge.target)), edge.label
        )
    serial = _run(flat, heavy_rules, compiled=True)
    spawned = _run(
        flat, heavy_rules, compiled=True, engine="parallel",
        processors=2, execution="processes", start_method="spawn",
    )
    assert spawned.violations.to_json() == serial.violations.to_json()
    assert serial.violation_count() > 0


def test_incremental_parity(product_graph, heavy_rules):
    rng = random.Random(3)
    updates = []
    for _ in range(25):
        updates.append(
            EdgeInsertion(("p", rng.randrange(220)), ("p", rng.randrange(220)), "variant")
        )
    existing = [
        (edge.source, edge.target, edge.label) for edge in product_graph.edges()
    ][:20]
    for source, target, label in existing:
        updates.append(EdgeDeletion(source, target, label))
    delta = BatchUpdate(updates)
    results = {}
    for engine in ("incremental", "parallel"):
        for compiled in (True, False):
            detector = Detector(
                heavy_rules,
                engine=engine,
                processors=4,
                options=DetectionOptions(compiled=compiled),
            )
            result = detector.run_incremental(product_graph, delta)
            results[(engine, compiled)] = (
                result.delta.introduced.to_json(),
                result.delta.removed.to_json(),
            )
    assert len(set(results.values())) == 1


def test_adaptive_replan_recompiles_suffix(product_graph, heavy_rules):
    # adaptive on: a drift-triggered suffix replan must recompile only the
    # revised order and keep parity with the interpreted evaluator
    on = _run(product_graph, heavy_rules, compiled=True, adaptive=True)
    off = _run(product_graph, heavy_rules, compiled=False, adaptive=True)
    assert on.violations.to_json() == off.violations.to_json()
    assert _stats_tuple(on.stats) == _stats_tuple(off.stats)


def test_matcher_seed_parity(product_graph, heavy_rules):
    # HomomorphismMatcher.violations(seed=...) drives the compiled branch of
    # matchn directly (the incremental pivots' code path)
    rule = list(heavy_rules)[0]
    plans = compile_plans(product_graph, [rule])
    plan = plans[0]
    seed_node = next(iter(product_graph.nodes_with_label("product")))
    seed = {plan.order[0]: seed_node} if plan.order else {}

    def matcher(compiled):
        stats = MatchStatistics()
        return (
            HomomorphismMatcher(
                product_graph,
                rule.pattern,
                premise=rule.premise,
                conclusion=rule.conclusion,
                stats=stats,
                plan=plan,
                compiled=compiled,
            ),
            stats,
        )

    on, on_stats = matcher(True)
    off, off_stats = matcher(False)
    assert list(on.violations()) == list(off.violations())
    assert _stats_tuple(on_stats) == _stats_tuple(off_stats)


# --------------------------------------------------------------- accounting


def test_evaluation_error_accounting_parity():
    # a premise literal whose attribute is present but non-numeric raises
    # EvaluationError/TypeError mid-candidate on the interpreted path; the
    # compiled path must bill the same single literal_evaluation and reject
    # the same candidate (no short-circuit skew)
    pattern = Pattern("Q")
    pattern.add_node("x", "item")
    pattern.add_node("y", "item")
    pattern.add_edge("x", "y", "rel")
    premise = LiteralSet(
        [Literal(Add(var("x", "v"), const(1)), Comparison.GT, const(0))]
    )
    conclusion = LiteralSet([Literal(var("y", "v"), Comparison.GE, const(0))])
    rules = RuleSet([NGD(pattern, premise, conclusion, name="partial")])
    graph = Graph(name="partial")
    graph.add_node(0, "item", {"v": 5})
    graph.add_node(1, "item", {"v": "broken"})  # raises in Add
    graph.add_node(2, "item", {})  # missing attribute
    graph.add_node(3, "item", {"v": -1})
    for source in (0, 1, 2):
        graph.add_edge(source, 3, "rel")
    graph.add_edge(0, 2, "rel")
    on = _run(graph, rules, compiled=True)
    off = _run(graph, rules, compiled=False)
    assert on.violations.to_json() == off.violations.to_json()
    # 0 -> 3 (conclusion numerically false) and 0 -> 2 (conclusion attribute
    # missing) violate; nodes 1 and 2 as premise sources are rejected
    assert on.violation_count() == 2
    assert _stats_tuple(on.stats) == _stats_tuple(off.stats)


# ---------------------------------------------------------------- machinery


def test_match_plan_pickles_after_compilation(product_graph, heavy_rules):
    rule = list(heavy_rules)[0]
    plan = compile_plans(product_graph, [rule])[0]
    schedule = plan.compiled_for(plan.order)
    assert isinstance(schedule, CompiledSchedule)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.order == plan.order
    # the clone starts memo-free and recompiles on demand
    recompiled = clone.compiled_for(clone.order)
    assert recompiled.order == schedule.order


def test_kill_switch_environment(monkeypatch):
    monkeypatch.delenv(COMPILED_ENV, raising=False)
    assert compiled_enabled() is True
    assert resolve_compiled(None) is True
    for raw in ("off", "0", "false", "no", "OFF"):
        monkeypatch.setenv(COMPILED_ENV, raw)
        assert compiled_enabled() is False
        assert resolve_compiled(None) is False
        assert resolve_compiled(True) is True  # explicit argument wins
    monkeypatch.setenv(COMPILED_ENV, "on")
    assert resolve_compiled(False) is False


def test_kill_switch_end_to_end(product_graph, heavy_rules, monkeypatch):
    monkeypatch.setenv(COMPILED_ENV, "off")
    off_env = _run(product_graph, heavy_rules, compiled=None)
    monkeypatch.delenv(COMPILED_ENV, raising=False)
    on_env = _run(product_graph, heavy_rules, compiled=None)
    assert off_env.violations.to_json() == on_env.violations.to_json()
    assert _stats_tuple(off_env.stats) == _stats_tuple(on_env.stats)


def test_triangle_multi_anchor_parity():
    # a genuine triangle: the last-placed variable anchors to TWO bound
    # variables, driving the sorted-rank intersection inside step_candidates
    # on the csr backend (the other workloads anchor to one variable only)
    pattern = Pattern("T")
    for variable in ("x", "y", "z"):
        pattern.add_node(variable, "n")
    pattern.add_edge("x", "y", "e")
    pattern.add_edge("y", "z", "e")
    pattern.add_edge("x", "z", "e")
    premise = LiteralSet([Literal(var("x", "w"), Comparison.GT, const(0))])
    conclusion = LiteralSet(
        [Literal(Add(var("y", "w"), var("z", "w")), Comparison.GE, var("x", "w"))]
    )
    rules = RuleSet([NGD(pattern, premise, conclusion, name="triangle")])
    rng = random.Random(5)
    graph = Graph(name="triangles")
    size = 60
    for i in range(size):
        graph.add_node(i, "n", {"w": rng.randint(-5, 30)})
    for _ in range(size * 6):
        source, target = rng.randrange(size), rng.randrange(size)
        if source != target and not graph.has_edge(source, target, "e"):
            graph.add_edge(source, target, "e")
    results = {}
    for backend in ("dict", "csr"):
        for compiled in (True, False):
            result = _run(graph, rules, compiled=compiled, backend=backend)
            results[(backend, compiled)] = (
                result.violations.to_json(),
                _stats_tuple(result.stats),
            )
    assert len({value[0] for value in results.values()}) == 1
    assert results[("csr", True)] == results[("csr", False)]
    assert results[("dict", True)] == results[("dict", False)]
    on = _run(graph, rules, compiled=True, backend="csr")
    assert on.stats.edge_checks > 0
    assert on.violation_count() > 0


def test_csr_sorted_intersection_matches_set_semantics(product_graph):
    graph = product_graph.with_backend("csr")
    sellers = list(graph.nodes_with_label("seller"))
    products = list(graph.nodes_with_label("product"))
    found = 0
    for seller in sellers[:10]:
        base = graph.successors_by_label(seller, "sells")
        if not hasattr(base, "rank_slice"):
            continue
        for product in products[:20]:
            other = graph.successors_by_label(product, "variant")
            if not hasattr(other, "rank_slice"):
                continue
            merged = csr_sorted_intersection(base, [other])
            assert merged is not None
            expected = sorted(set(base) & set(other), key=graph.node_rank)
            assert merged == expected
            found += 1
    assert found > 0
