"""End-to-end tests for the observability subsystem (:mod:`repro.obs`).

Covers the ISSUE's hard requirements:

* metrics registry units — counters/gauges/histograms with label sets,
  per-thread shard merging, Prometheus exposition, worker-dump absorption;
* span tracing — parent/child correctness via the contextvar under nested
  scopes and concurrent threads, the flight-recorder ring bound;
* the **observe, never steer** invariant: byte-identical ``ViolationSet``s
  with ``REPRO_OBS`` on and off across every storage backend × execution
  mode, including the real multi-process backend under both ``fork`` and
  ``spawn`` start methods;
* the ``--profile`` invariant: summing the ``detect.rule`` spans of one
  trace reproduces the run's ``MatchStatistics``;
* the sink error contract on all four kernels (a raising sink is logged
  and counted, never aborts the run, never changes its output);
* the service surfaces: ``/metrics`` scrape-able during an active NDJSON
  stream, ``/debug/traces``, ``X-Repro-Trace`` + summary ``trace_id``
  agreement, the structured access log, and the extended ``/health``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g1, figure1_g2
from repro.detect import DetectionOptions, Detector, ViolationSink
from repro.graph.graph import Graph
from repro.graph.store import STORE_REGISTRY
from repro.graph.updates import UpdateGenerator
from repro.obs.metrics import MetricsRegistry, NullRegistry, render_prometheus
from repro.obs.tracing import FlightRecorder, Span, format_span_tree, new_id
from repro.service import DetectionService, ServiceClient

ALL_STORES = tuple(sorted(STORE_REGISTRY))  # csr, dict, indexed, persistent


@pytest.fixture(autouse=True)
def fresh_observability():
    """Every test starts from an empty, enabled registry/recorder pair."""
    obs.configure(True)
    yield
    obs.configure()  # restore the REPRO_OBS-driven default for later suites


@pytest.fixture
def delta(g2):
    return UpdateGenerator(seed=21).generate(g2, 12, insert_ratio=0.5)


# ------------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.counter_inc("req_total", {"route": "/a"})
        registry.counter_inc("req_total", {"route": "/a"}, 2.0)
        registry.counter_inc("req_total", {"route": "/b"}, 5.0)
        registry.counter_inc("req_total")
        assert registry.value("req_total", {"route": "/a"}) == 3.0
        assert registry.value("req_total", {"route": "/b"}) == 5.0
        assert registry.value("req_total") == 1.0
        assert registry.total("req_total") == 9.0

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge_set("jobs_active", value=4.0)
        registry.gauge_add("jobs_active", amount=-1.0)
        assert registry.value("jobs_active") == 3.0
        registry.gauge_set("jobs_active", value=0.0)
        assert registry.value("jobs_active") == 0.0

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        registry.describe("latency", "histogram", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            registry.histogram_observe("latency", value=value)
        snap = registry.snapshot()
        [(name, key, cells)] = snap["histograms"]
        assert name == "latency" and key == []
        # per-bucket (non-cumulative) counts + [sum, count] at the tail;
        # 50.0 overflows every bound and lands only in sum/count
        assert cells == [1.0, 2.0, 1.0, 56.05, 5.0]

    def test_thread_shards_merge_on_read(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.counter_inc("hits", {"k": "v"})

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("hits", {"k": "v"}) == 8000.0

    def test_exposition_is_valid_prometheus_text(self):
        registry = MetricsRegistry()
        registry.describe("req_total", "counter", "requests served")
        registry.counter_inc("req_total", {"route": "/a", "status": "200"}, 3)
        registry.gauge_set("temp", value=1.5)
        registry.describe("lat", "histogram", buckets=(0.5, 1.0))
        registry.histogram_observe("lat", value=0.2)
        text = registry.exposition()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/a",status="200"} 3' in text
        assert "# TYPE temp gauge" in text
        assert "temp 1.5" in text
        # histogram exposition: cumulative buckets, +Inf == _count, plus sum
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_exposition_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", {"path": 'a"b\\c\nd'})
        assert 'path="a\\"b\\\\c\\nd"' in registry.exposition()

    def test_absorb_applies_worker_label(self):
        worker = MetricsRegistry()
        worker.counter_inc("units_total", {"rule": "r1"}, 7)
        worker.histogram_observe("wait", value=0.2)
        worker.gauge_add("inflight", amount=2)
        parent = MetricsRegistry()
        parent.absorb(worker.dump(), extra_labels={"worker": 3})
        assert parent.value("units_total", {"rule": "r1", "worker": 3}) == 7.0
        assert parent.value("inflight", {"worker": 3}) == 2.0
        [(name, key, cells)] = parent.snapshot()["histograms"]
        assert name == "wait" and ["worker", "3"] in key and cells[-1] == 1.0

    def test_absorb_is_additive_across_payloads(self):
        parent = MetricsRegistry()
        for _ in range(3):
            worker = MetricsRegistry()
            worker.counter_inc("units_total", amount=2)
            parent.absorb(worker.dump(), extra_labels={"worker": 0})
        assert parent.value("units_total", {"worker": 0}) == 6.0

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.counter_inc("anything", {"a": "b"}, 5)
        null.histogram_observe("h", value=1.0)
        assert null.snapshot() == {"families": {}, "counters": [], "gauges": [], "histograms": []}
        assert null.value("anything") == 0.0
        assert "disabled" in null.exposition()

    def test_render_prometheus_of_empty_snapshot(self):
        text = render_prometheus({"families": {}, "counters": [], "gauges": [], "histograms": []})
        assert text == "\n"


# ------------------------------------------------------------------- tracing


class TestTracing:
    def test_new_id_shape(self):
        identifier = new_id()
        assert len(identifier) == 16
        int(identifier, 16)  # raises if not hex

    def test_nested_spans_share_trace_and_parent(self):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert obs.current_span() is outer
        assert obs.current_span() is None
        recorded = obs.traces()
        assert [span["name"] for span in recorded] == ["inner", "outer"]

    def test_span_parenting_is_correct_under_threads(self):
        """Each thread gets its own contextvar: no cross-thread parent leaks."""
        results = {}

        def run(tag):
            with obs.span(f"root-{tag}") as root:
                with obs.span(f"child-{tag}") as child:
                    results[tag] = (root, child)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trace_ids = set()
        for tag, (root, child) in results.items():
            assert child.parent_id == root.span_id
            assert child.trace_id == root.trace_id
            trace_ids.add(root.trace_id)
        assert len(trace_ids) == 6  # six independent traces, no sharing

    def test_flight_recorder_ring_bound(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            span = Span(f"s{index}")
            span.finish()
            recorder.record(span)
        names = [span["name"] for span in recorder.snapshot()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert [span["name"] for span in recorder.snapshot(limit=2)] == ["s8", "s9"]

    def test_format_span_tree_indents_children(self):
        with obs.span("parent", graph="g1"):
            with obs.span("child"):
                pass
        tree = format_span_tree(obs.traces())
        lines = tree.splitlines()
        assert lines[0].startswith("- parent") and "graph=g1" in lines[0]
        assert lines[1].startswith("  - child")

    def test_disabled_span_is_null(self):
        obs.configure(False)
        with obs.span("ignored") as span:
            assert span.trace_id is None
            span.set(anything=1)
        assert obs.traces() == []
        assert obs.current_span() is None


# ------------------------------------------------- detector trace correctness


class TestDetectorTraces:
    def test_run_produces_one_trace_with_rule_spans(self, g1, figure1_rules):
        result = Detector(figure1_rules, engine="batch").run(g1)
        assert result.trace_id is not None
        spans = [span for span in obs.traces() if span["trace_id"] == result.trace_id]
        roots = [span for span in spans if span["name"] == "detect.run"]
        assert len(roots) == 1
        root = roots[0]
        assert root["attributes"]["violations"] == result.violation_count()
        rule_spans = [span for span in spans if span["name"] == "detect.rule"]
        assert {span["parent_id"] for span in rule_spans} == {root["span_id"]}
        assert len(rule_spans) == len(figure1_rules)

    def test_profile_invariant_rule_spans_sum_to_match_statistics(self, g1, figure1_rules):
        """Summing detect.rule spans reproduces MatchStatistics (--profile)."""
        result = Detector(figure1_rules, engine="batch").run(g1)
        rule_spans = [
            span
            for span in obs.traces()
            if span["name"] == "detect.rule" and span["trace_id"] == result.trace_id
        ]
        for field in (
            "candidates_examined",
            "expansions",
            "edge_checks",
            "literal_evaluations",
            "matches_emitted",
        ):
            summed = sum(span["attributes"][field] for span in rule_spans)
            assert summed == getattr(result.stats, field), field
        assert sum(span["attributes"]["violations"] for span in rule_spans) == (
            result.violation_count()
        )

    def test_run_counters_cover_detection_families(self, g1, figure1_rules):
        Detector(figure1_rules, engine="batch").run(g1)
        registry = obs.metrics()
        assert registry.value("repro_detect_runs_total", {"algorithm": "Dect"}) == 1.0
        assert registry.total("repro_detect_candidates_total") > 0
        assert registry.total("repro_match_candidates_examined") > 0

    def test_incremental_run_is_traced(self, g2, figure1_rules, delta):
        result = Detector(figure1_rules, engine="batch").run_incremental(g2, delta)
        assert result.trace_id is not None
        names = {
            span["name"] for span in obs.traces() if span["trace_id"] == result.trace_id
        }
        assert "detect.run_incremental" in names

    def test_trace_id_is_none_when_disabled(self, g1, figure1_rules):
        obs.configure(False)
        result = Detector(figure1_rules, engine="batch").run(g1)
        assert result.trace_id is None

    def test_slow_plan_log_fires_over_threshold(self, g1, figure1_rules, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SLOW_PLAN_RATIO", "0.000001")
        with caplog.at_level("WARNING", logger="repro.detect.slowplan"):
            Detector(figure1_rules, engine="batch").run(g1)
        assert any("slow plan" in message for message in caplog.messages)
        assert obs.metrics().total("repro_slow_plans_total") == 1.0


# ----------------------------------------------- observe-never-steer parity


def _run(graph: Graph, execution: str):
    if execution == "serial":
        detector = Detector(example_rules(), engine="batch")
    else:
        detector = Detector(
            example_rules(),
            engine="parallel",
            processors=2,
            options=DetectionOptions(execution="processes"),
        )
    return detector.run(graph)


class TestOnOffParity:
    """Hard requirement: byte-identical ViolationSets with obs on and off."""

    @pytest.mark.parametrize("backend", ALL_STORES)
    @pytest.mark.parametrize("execution", ("serial", "processes"))
    def test_violations_byte_identical(self, backend, execution):
        graph = figure1_g2().with_backend(backend)
        obs.configure(True)
        with_obs = _run(graph, execution)
        assert with_obs.trace_id is not None
        obs.configure(False)
        without_obs = _run(graph, execution)
        assert without_obs.trace_id is None
        assert with_obs.violations.to_json() == without_obs.violations.to_json()
        assert len(with_obs.violations) > 0
        assert with_obs.cost == without_obs.cost

    def test_incremental_byte_identical(self, g2, figure1_rules, delta):
        obs.configure(True)
        with_obs = Detector(figure1_rules, engine="batch").run_incremental(g2, delta)
        obs.configure(False)
        without_obs = Detector(figure1_rules, engine="batch").run_incremental(g2, delta)
        assert with_obs.introduced().to_json() == without_obs.introduced().to_json()
        assert with_obs.removed().to_json() == without_obs.removed().to_json()


# ------------------------------------------ cross-process metric/span shipping


class TestCrossProcessShipping:
    @pytest.mark.parametrize("start_method", ("fork", "spawn"))
    def test_worker_spans_and_metrics_ship_home(self, start_method):
        graph = figure1_g2()
        result = Detector(
            example_rules(),
            engine="parallel",
            processors=2,
            options=DetectionOptions(execution="processes", start_method=start_method),
        ).run(graph)
        assert result.algorithm == "PDect"
        assert len(result.violations) > 0
        spans = obs.traces()
        worker_spans = [span for span in spans if span["name"] == "executor.worker"]
        assert worker_spans, "workers must ship their spans back over the result queue"
        # worker metric deltas arrive labelled with the shipping worker's id
        snap = obs.snapshot()
        worker_labelled = [
            (name, dict(key))
            for name, key, _ in snap["counters"]
            if any(k == "worker" for k, _ in key)
        ]
        assert worker_labelled, "worker counter deltas must be absorbed with a worker label"
        assert obs.metrics().total("repro_executor_units_total") > 0

    def test_fork_worker_spans_join_the_run_trace(self):
        """fork children inherit the contextvar: their spans join the run tree."""
        graph = figure1_g2()
        result = Detector(
            example_rules(),
            engine="parallel",
            processors=2,
            options=DetectionOptions(execution="processes", start_method="fork"),
        ).run(graph)
        worker_spans = [span for span in obs.traces() if span["name"] == "executor.worker"]
        assert worker_spans
        assert {span["trace_id"] for span in worker_spans} == {result.trace_id}


# ------------------------------------------------------- sink error contract


class ExplodingSink(ViolationSink):
    """Raises in every callback; the kernels must shrug it off."""

    def __init__(self):
        self.calls = []

    def on_start(self, detector):
        self.calls.append("on_start")
        raise RuntimeError("boom in on_start")

    def on_violation(self, violation, introduced=True):
        self.calls.append("on_violation")
        raise RuntimeError("boom in on_violation")

    def on_finish(self, result):
        self.calls.append("on_finish")
        raise RuntimeError("boom in on_finish")


class TestSinkErrorContract:
    """A raising sink never aborts the stream or changes the output — on all
    four kernels — and every swallowed exception is logged and counted."""

    @pytest.mark.parametrize("engine,processors,algorithm", [
        ("batch", None, "Dect"),
        ("parallel", 2, "PDect"),
    ])
    def test_batch_kernels_survive_raising_sink(self, g2, figure1_rules, engine, processors, algorithm):
        clean = Detector(figure1_rules, engine=engine, processors=processors).run(g2)
        sink = ExplodingSink()
        noisy = Detector(
            figure1_rules, engine=engine, processors=processors, sinks=[sink]
        ).run(g2)
        assert noisy.algorithm == algorithm
        assert noisy.violations.to_json() == clean.violations.to_json()
        assert "on_start" in sink.calls and "on_finish" in sink.calls
        assert sink.calls.count("on_violation") == len(clean.violations)
        registry = obs.metrics()
        assert registry.value("repro_sink_errors_total", {"method": "on_start"}) == 1.0
        assert registry.value("repro_sink_errors_total", {"method": "on_finish"}) == 1.0
        assert registry.value("repro_sink_errors_total", {"method": "on_violation"}) == float(
            len(clean.violations)
        )

    @pytest.mark.parametrize("engine,processors,algorithm", [
        ("incremental", None, "IncDect"),
        ("parallel", 2, "PIncDect"),
    ])
    def test_incremental_kernels_survive_raising_sink(
        self, g2, figure1_rules, delta, engine, processors, algorithm
    ):
        clean = Detector(figure1_rules, engine=engine, processors=processors).run_incremental(
            g2, delta
        )
        sink = ExplodingSink()
        noisy = Detector(
            figure1_rules, engine=engine, processors=processors, sinks=[sink]
        ).run_incremental(g2, delta)
        assert noisy.algorithm == algorithm
        assert noisy.introduced().to_json() == clean.introduced().to_json()
        assert noisy.removed().to_json() == clean.removed().to_json()
        assert "on_start" in sink.calls and "on_finish" in sink.calls
        assert obs.metrics().total("repro_sink_errors_total") >= 2.0

    def test_sink_errors_are_logged(self, g1, figure1_rules, caplog):
        with caplog.at_level("WARNING", logger="repro.detect.sink"):
            Detector(figure1_rules, engine="batch", sinks=[ExplodingSink()]).run(g1)
        assert any("violation sink raised" in message for message in caplog.messages)


# ------------------------------------------------------------ service surface


def multi_area_graph(areas: int = 6, name: str = "areas") -> Graph:
    """Every area violates φ2 — a stream with ``areas`` violation records."""
    graph = Graph(name)
    for i in range(areas):
        graph.add_node(f"area{i}", "area")
        graph.add_node(f"f{i}", "integer", {"val": 100 + i})
        graph.add_node(f"m{i}", "integer", {"val": 200 + i})
        graph.add_node(f"t{i}", "integer", {"val": 999})
        graph.add_edge(f"area{i}", f"f{i}", "femalePopulation")
        graph.add_edge(f"area{i}", f"m{i}", "malePopulation")
        graph.add_edge(f"area{i}", f"t{i}", "populationTotal")
    return graph


@pytest.fixture
def service():
    svc = DetectionService(port=0)
    svc.manager.register_catalog("example", example_rules())
    with svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def _get(service, path):
    with urllib.request.urlopen(f"{service.url}{path}", timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


class TestServiceObservability:
    def test_metrics_scrape_during_active_stream(self, service, client):
        # > JOB_QUEUE_CAPACITY violations, so the producer is guaranteed to
        # still be mid-stream (slot held, gauge up) when we scrape
        client.register_graph("areas", multi_area_graph(areas=300))
        records = client.stream_detect("areas", catalog="example", engine="batch")
        first = next(records)
        assert first["type"] == "violation"
        status, headers, text = _get(service, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "repro_jobs_active 1" in text
        assert "repro_jobs_total 1" in text
        remaining = list(records)
        summary = remaining[-1]
        assert summary["type"] == "summary"
        assert summary["trace_id"]
        # post-run scrape reflects the completed work (the producer thread
        # decrements the gauge just after handing over the final record)
        for _ in range(50):
            _, _, text = _get(service, "/metrics")
            if "repro_jobs_active 0" in text:
                break
            time.sleep(0.05)
        assert "repro_jobs_active 0" in text
        assert 'repro_detect_runs_total{algorithm="Dect"} 1' in text
        assert 'repro_http_requests_total{method="GET",route="/metrics",status="200"}' in text

    def test_trace_header_matches_summary_trace_id(self, service, client):
        client.register_graph("areas", multi_area_graph(areas=2))
        request = urllib.request.Request(
            f"{service.url}/graphs/areas/detect",
            data=json.dumps({"catalog": "example"}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            header_trace = response.headers.get("X-Repro-Trace")
            records = [json.loads(line) for line in response if line.strip()]
        assert header_trace
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["trace_id"] == header_trace
        # the whole run landed in the flight recorder under that one trace
        trace_names = {
            span["name"] for span in obs.traces() if span["trace_id"] == header_trace
        }
        assert "service.detect" in trace_names
        assert "detect.run" in trace_names

    def test_debug_traces_endpoint(self, service, client):
        client.register_graph("areas", multi_area_graph(areas=2))
        client.detect("areas", catalog="example")
        status, _, text = _get(service, "/debug/traces?limit=50")
        assert status == 200
        document = json.loads(text)
        assert document["enabled"] is True
        assert document["count"] == len(document["spans"]) > 0
        names = {span["name"] for span in document["spans"]}
        assert "detect.run" in names
        # limit is honoured
        _, _, text = _get(service, "/debug/traces?limit=1")
        assert len(json.loads(text)["spans"]) == 1

    def test_debug_traces_rejects_bad_limit(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service, "/debug/traces?limit=potato")
        assert excinfo.value.code == 400

    def test_health_reports_observability_and_uptime(self, service, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["observability"] is True
        assert health["uptime_seconds"] >= 0
        assert "executor_pools" in health

    def test_access_log_line_per_request(self, capfd):
        svc = DetectionService(port=0, access_log=True)
        with svc:
            ServiceClient(svc.url).health()
        err = capfd.readouterr().err
        lines = [line for line in err.splitlines() if "path=/health" in line]
        assert lines, f"expected an access-log line, stderr was: {err!r}"
        assert "method=GET" in lines[0]
        assert "status=200" in lines[0]
        assert "duration_ms=" in lines[0]

    def test_quiet_service_logs_nothing(self, capfd):
        svc = DetectionService(port=0, access_log=False)
        with svc:
            ServiceClient(svc.url).health()
        err = capfd.readouterr().err
        assert "path=/health" not in err

    def test_metrics_endpoint_with_obs_disabled(self, service):
        obs.configure(False)
        status, _, text = _get(service, "/metrics")
        assert status == 200
        assert "disabled" in text
        _, _, body = _get(service, "/debug/traces")
        assert json.loads(body)["enabled"] is False
