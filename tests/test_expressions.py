"""Unit tests for terms, arithmetic expressions and their linearity/degree rules."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import EvaluationError, ExpressionError
from repro.expr.expressions import AbsoluteValue, Add, Divide, Multiply, Negate, Subtract, as_expression, const, var
from repro.expr.terms import AttributeTerm, Constant, as_term


class TestTerms:
    def test_constant(self):
        term = Constant(5)
        assert term.degree() == 0
        assert term.variables() == frozenset()
        assert str(term) == "5"

    def test_attribute_term(self):
        term = AttributeTerm("x", "val")
        assert term.degree() == 1
        assert term.variables() == frozenset({("x", "val")})
        assert str(term) == "x.val"

    def test_attribute_term_requires_names(self):
        with pytest.raises(ExpressionError):
            AttributeTerm("", "val")

    def test_as_term_coercions(self):
        assert as_term(3) == Constant(3)
        assert as_term("x.age") == AttributeTerm("x", "age")
        assert as_term(Constant(1)) == Constant(1)

    def test_as_term_rejects_bad_inputs(self):
        with pytest.raises(ExpressionError):
            as_term("justaname")
        with pytest.raises(ExpressionError):
            as_term(True)
        with pytest.raises(ExpressionError):
            as_term([1, 2])


class TestExpressionConstruction:
    def test_operator_overloads(self):
        expression = var("x") + 3
        assert isinstance(expression, Add)
        assert isinstance(var("x") - var("y"), Subtract)
        assert isinstance(2 * var("x"), Multiply)
        assert isinstance(var("x") / 2, Divide)
        assert isinstance(-var("x"), Negate)
        assert isinstance(abs(var("x")), AbsoluteValue)

    def test_as_expression(self):
        assert as_expression(7).evaluate({}) == 7
        assert as_expression("x.val").variables() == frozenset({("x", "val")})

    def test_str_rendering(self):
        expression = (var("x") + 1) * 2
        assert "x.val" in str(expression)
        assert "+" in str(expression)


class TestDegreesAndLinearity:
    def test_linear_combinations_stay_degree_one(self):
        expression = 3 * var("x") - var("y") / 2 + 7
        assert expression.degree() == 1
        assert expression.is_linear()

    def test_product_of_variables_is_degree_two(self):
        expression = var("x") * var("y")
        assert expression.degree() == 2
        assert not expression.is_linear()

    def test_division_by_variable_is_nonlinear(self):
        expression = var("x") / var("y")
        assert not expression.is_linear()

    def test_absolute_value_preserves_degree(self):
        assert abs(var("x") - var("y")).degree() == 1
        assert abs(var("x") * var("y")).degree() == 2

    def test_paper_example_phi4_condition_is_linear(self):
        # a×(x.follower − y.follower) + b×(x.following − y.following)
        expression = 2 * (var("x", "follower") - var("y", "follower")) + 3 * (
            var("x", "following") - var("y", "following")
        )
        assert expression.is_linear()


class TestEvaluation:
    def test_basic_arithmetic(self):
        expression = 3 * var("x") + var("y") - 4
        assert expression.evaluate({("x", "val"): 2, ("y", "val"): 5}) == 7

    def test_division_is_exact(self):
        expression = var("x") / 4
        assert expression.evaluate({("x", "val"): 1}) == Fraction(1, 4)

    def test_division_by_zero(self):
        expression = var("x") / (var("y") - var("y"))
        with pytest.raises(EvaluationError):
            expression.evaluate({("x", "val"): 1, ("y", "val"): 2})

    def test_absolute_value(self):
        assert abs(var("x") - var("y")).evaluate({("x", "val"): 2, ("y", "val"): 9}) == 7

    def test_missing_attribute_raises(self):
        with pytest.raises(EvaluationError):
            var("x", "age").evaluate({})

    def test_negation(self):
        assert (-var("x")).evaluate({("x", "val"): 4}) == -4


class TestLinearCoefficients:
    def test_simple_combination(self):
        expression = 3 * var("x") - var("y") / 2 + 7
        coefficients, constant = expression.linear_coefficients()
        assert coefficients[("x", "val")] == 3
        assert coefficients[("y", "val")] == Fraction(-1, 2)
        assert constant == 7

    def test_same_variable_merges(self):
        expression = var("x") + var("x")
        coefficients, _ = expression.linear_coefficients()
        assert coefficients[("x", "val")] == 2

    def test_nonlinear_rejected(self):
        with pytest.raises(ExpressionError):
            (var("x") * var("y")).linear_coefficients()

    def test_absolute_value_rejected(self):
        with pytest.raises(ExpressionError):
            abs(var("x")).linear_coefficients()

    def test_division_by_constant_zero_rejected(self):
        with pytest.raises(ExpressionError):
            (var("x") / 0).linear_coefficients()

    def test_negate_flips_signs(self):
        coefficients, constant = (-(var("x") + 2)).linear_coefficients()
        assert coefficients[("x", "val")] == -1
        assert constant == -2
