"""Unit tests for NGDs, rule sets, violations, and the built-in paper rules."""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import (
    effectiveness_rules,
    example_rules,
    ngd1,
    ngd2,
    ngd3,
    phi1,
    phi2,
    phi3,
    phi4,
)
from repro.core.ngd import NGD, RuleSet, cfd_as_ngd, gfd
from repro.core.validation import find_violations, graph_satisfies
from repro.core.violations import Violation, ViolationDelta, ViolationSet
from repro.datasets.figure1 import days_since_epoch
from repro.errors import DependencyError, NonLinearExpressionError
from repro.expr.parser import parse_literal_set
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern


class TestNGDConstruction:
    def test_from_text(self, knows_pattern):
        rule = NGD.from_text(knows_pattern, "x.val > 0", "y.val > 0", name="r")
        assert len(rule.premise) == 1
        assert len(rule.conclusion) == 1
        assert rule.variables() == ("x", "y")

    def test_unknown_variable_rejected(self, knows_pattern):
        with pytest.raises(DependencyError):
            NGD.from_text(knows_pattern, "", "z.val = 1")

    def test_nonlinear_rejected_by_default(self, knows_pattern):
        with pytest.raises(NonLinearExpressionError):
            NGD.from_text(knows_pattern, "", "x.val * y.val = 1")

    def test_nonlinear_allowed_with_flag(self, knows_pattern):
        rule = NGD.from_text(knows_pattern, "", "x.val * y.val = 1", allow_nonlinear=True)
        assert not rule.is_linear()
        assert rule.max_expression_degree() == 2

    def test_is_gfd(self, knows_pattern):
        assert NGD.from_text(knows_pattern, "x.val = 1", "y.val = 2").is_gfd()
        assert not NGD.from_text(knows_pattern, "", "x.val < y.val").is_gfd()

    def test_uses_comparison_beyond_equality(self, knows_pattern):
        assert NGD.from_text(knows_pattern, "", "x.val <= y.val").uses_comparison_beyond_equality()
        assert not NGD.from_text(knows_pattern, "", "x.val = y.val").uses_comparison_beyond_equality()

    def test_size_and_diameter(self, rule_phi2):
        assert rule_phi2.diameter() == 2
        assert rule_phi2.size() == rule_phi2.pattern.size() + 1

    def test_attributes_of(self, rule_phi4):
        assert rule_phi4.attributes_of("s1") == frozenset({"val"})
        assert rule_phi4.attributes_of("w") == frozenset()

    def test_match_satisfies_semantics(self, knows_pattern):
        rule = NGD.from_text(knows_pattern, "x.val > 0", "y.val > x.val")
        assert rule.match_satisfies({("x", "val"): -1})  # premise fails → vacuously satisfied
        assert rule.match_satisfies({("x", "val"): 1, ("y", "val"): 2})
        assert rule.match_violates({("x", "val"): 1, ("y", "val"): 0})

    def test_equality_and_hash(self, knows_pattern):
        a = NGD.from_text(knows_pattern, "", "x.val = 1", name="a")
        b = NGD.from_text(knows_pattern, "", "x.val = 1", name="b")
        assert a == b
        assert hash(a) == hash(b)

    def test_gfd_constructor_enforces_fragment(self, knows_pattern):
        rule = gfd(knows_pattern, "x.val = 1", "y.val = 2")
        assert rule.is_gfd()
        with pytest.raises(DependencyError):
            gfd(knows_pattern, "", "x.val < y.val")

    def test_cfd_embedding(self):
        rule = cfd_as_ngd("customer", "t.country = 44", "t.area = 131", name="uk_area")
        assert rule.pattern.node_count() == 1
        assert rule.is_gfd()


class TestRuleSet:
    def test_iteration_and_lookup(self, figure1_rules):
        assert len(figure1_rules) == 4
        assert figure1_rules.by_name("phi3").name == "phi3"
        with pytest.raises(DependencyError):
            figure1_rules.by_name("missing")

    def test_diameter_is_max(self, figure1_rules):
        assert figure1_rules.diameter() == 4

    def test_restrict(self, figure1_rules):
        assert len(figure1_rules.restrict(2)) == 2

    def test_total_size_and_max_nodes(self, figure1_rules):
        assert figure1_rules.total_size() > 0
        assert figure1_rules.max_pattern_nodes() == 9  # Q4 has nine pattern nodes

    def test_is_linear(self, figure1_rules):
        assert figure1_rules.is_linear()


class TestViolations:
    def test_violation_mapping_roundtrip(self):
        violation = Violation.from_mapping("r", {"x": 1, "y": 2}, ("x", "y"))
        assert violation.mapping() == {"x": 1, "y": 2}
        assert violation.involves_node(1)
        assert not violation.involves_node(3)

    def test_violation_set_operations(self):
        a = Violation("r", ("x",), (1,))
        b = Violation("r", ("x",), (2,))
        c = Violation("s", ("x",), (1,))
        before = ViolationSet([a, b])
        after = ViolationSet([b, c])
        delta = ViolationDelta.from_sets(before, after)
        assert delta.introduced.as_set() == frozenset({c})
        assert delta.removed.as_set() == frozenset({a})
        assert before.apply_delta(delta) == after

    def test_violation_set_indexes(self):
        a = Violation("r", ("x",), (1,))
        c = Violation("s", ("x",), (2,))
        violations = ViolationSet([a, c])
        assert violations.by_rule("r") == frozenset({a})
        assert violations.rules_violated() == frozenset({"r", "s"})
        assert violations.nodes_involved() == frozenset({1, 2})

    def test_empty_delta(self):
        assert ViolationDelta.empty().is_empty()
        assert ViolationDelta.empty().total_changes() == 0


class TestPaperRulesOnFigure1:
    def test_phi1_catches_g1(self, g1, rule_phi1):
        violations = find_violations(g1, [rule_phi1])
        assert len(violations) == 1
        assert next(iter(violations)).mapping()["x"] == "BBC_Trust"

    def test_phi2_catches_g2(self, g2, rule_phi2):
        assert len(find_violations(g2, [rule_phi2])) == 1

    def test_phi3_catches_g3(self, g3, rule_phi3):
        violations = find_violations(g3, [rule_phi3])
        assert len(violations) == 1
        mapping = next(iter(violations)).mapping()
        assert {mapping["x"], mapping["y"]} == {"Corona", "Downey"}

    def test_phi4_catches_fake_account(self, g4, rule_phi4):
        violations = find_violations(g4, [rule_phi4])
        assert len(violations) == 1
        assert next(iter(violations)).mapping()["y"] == "NatWest_Help"

    def test_clean_graphs_satisfy_other_rules(self, g1, g2, figure1_rules):
        # each figure-1 graph violates exactly its own rule; e.g. G1 satisfies φ2–φ4
        assert graph_satisfies(g1, [phi2(), phi3(), phi4()])
        assert graph_satisfies(g2, [phi1(), phi3(), phi4()])

    def test_fixing_g2_removes_the_violation(self, g2, rule_phi2):
        g2.set_attribute("total", "val", 1322)
        assert graph_satisfies(g2, [rule_phi2])

    def test_phi1_threshold_parameter(self, g1):
        # with the default threshold the backwards dates violate φ1 ...
        assert len(find_violations(g1, [phi1(min_days=1)])) == 1
        # ... but a (nonsensical) threshold lower than the observed gap satisfies it
        assert graph_satisfies(g1, [phi1(min_days=-100_000)])


class TestEffectivenessRules:
    def test_ngd1_catches_living_person_born_1713(self):
        graph = Graph()
        graph.add_node("john", "person")
        graph.add_node("john_birth", "integer", {"val": 1713})
        graph.add_node("john_cat", "string", {"val": "living people"})
        graph.add_edge("john", "john_birth", "birthYear")
        graph.add_edge("john", "john_cat", "category")
        assert len(find_violations(graph, [ngd1()])) == 1
        graph.set_attribute("john_cat", "val", "18th century people")
        assert graph_satisfies(graph, [ngd1()])

    def test_ngd2_catches_olympics_nation_count(self):
        graph = Graph()
        graph.add_node("olympics1992", "major_event", {"type": "Olympic"})
        graph.add_node("sailboard", "competition")
        graph.add_node("competitors", "integer", {"val": 24})
        graph.add_node("nations", "integer", {"val": 34})
        graph.add_edge("olympics1992", "sailboard", "includes")
        graph.add_edge("sailboard", "competitors", "competitors")
        graph.add_edge("sailboard", "nations", "nations")
        assert len(find_violations(graph, [ngd2()])) == 1

    def test_ngd2_ignores_non_olympic_events(self):
        graph = Graph()
        graph.add_node("worlds", "major_event", {"type": "WorldCup"})
        graph.add_node("race", "competition")
        graph.add_node("competitors", "integer", {"val": 10})
        graph.add_node("nations", "integer", {"val": 20})
        graph.add_edge("worlds", "race", "includes")
        graph.add_edge("race", "competitors", "competitors")
        graph.add_edge("race", "nations", "nations")
        assert graph_satisfies(graph, [ngd2()])

    def test_ngd3_catches_driver_win_mismatch(self):
        graph = Graph()
        graph.add_node("ferrari", "team", {"numberOfWins": 0})
        graph.add_node("vettel", "driver", {"numberOfWins": 1})
        graph.add_node("verstappen", "driver", {"numberOfWins": 1})
        graph.add_node("y2016", "year")
        graph.add_edge("vettel", "ferrari", "team")
        graph.add_edge("verstappen", "ferrari", "team")
        graph.add_edge("vettel", "y2016", "year")
        graph.add_edge("verstappen", "y2016", "year")
        graph.add_edge("ferrari", "y2016", "year")
        assert len(find_violations(graph, [ngd3()])) >= 1

    def test_rule_set_builders(self):
        assert len(example_rules()) == 4
        assert len(effectiveness_rules()) == 3

    def test_days_since_epoch_ordering(self):
        assert days_since_epoch(2007) > days_since_epoch(1946, 8, 28)
