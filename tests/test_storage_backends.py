"""Parity and regression tests for the pluggable graph storage engines.

The refactor's contract: every backend behind :class:`repro.graph.store.GraphStore`
must be observationally identical through the :class:`Graph` facade — same
violation sets from ``dect``/``inc_dect``, same subgraphs, same index
consistency after arbitrary interleaved mutation — while the matcher's
enumeration order must be deterministic across interpreter runs (and hence
immune to string-hash randomization).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.ngd import NGD
from repro.detect import dect, inc_dect
from repro.errors import GraphError
from repro.graph.generators import random_labeled_graph
from repro.graph.graph import WILDCARD, Graph
from repro.graph.neighborhood import d_neighbor_of_nodes, update_neighborhood
from repro.graph.pattern import Pattern
from repro.graph.store import (
    STORE_REGISTRY,
    DictStore,
    IndexedStore,
    default_store_name,
    make_store,
)
from repro.graph.updates import UpdateGenerator, apply_update
from repro.matching.matchn import HomomorphismMatcher

BACKENDS = sorted(STORE_REGISTRY)
#: Engines whose stores accept interleaved mutation (the CSR engine is
#: append-only and freezes on first adjacency read).
MUTABLE_BACKENDS = [name for name in BACKENDS if STORE_REGISTRY[name].supports_mutation]


# ------------------------------------------------------------- store selection


class TestStoreSelection:
    def test_registry_contains_all_engines(self):
        assert {"dict", "indexed", "csr"} <= set(STORE_REGISTRY)

    def test_default_backend_is_indexed(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH_STORE", raising=False)
        assert default_store_name() == "indexed"
        assert Graph().store_backend == "indexed"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_STORE", "dict")
        assert Graph().store_backend == "dict"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_STORE", "dict")
        assert Graph(store="indexed").store_backend == "indexed"

    def test_store_instance_is_used_as_is(self):
        store = DictStore()
        graph = Graph(store=store)
        assert graph.store is store

    def test_unknown_backend_raises(self):
        with pytest.raises(GraphError):
            make_store("csr-not-yet")

    def test_copy_and_subgraphs_preserve_backend(self):
        for backend in BACKENDS:
            graph = Graph(store=backend)
            graph.add_node("a", "x")
            graph.add_node("b", "x")
            graph.add_edge("a", "b", "e")
            assert graph.copy().store_backend == backend
            assert graph.induced_subgraph(["a", "b"]).store_backend == backend

    def test_with_backend_converts_and_preserves_content(self):
        graph = Graph(store="dict")
        graph.add_node("a", "x", {"val": 1})
        graph.add_node("b", "y")
        graph.add_edge("a", "b", "e")
        converted = graph.with_backend("indexed")
        assert converted.store_backend == "indexed"
        assert converted == graph


# ----------------------------------------------------------------- parity suite


def _random_rules(seed: int) -> list[NGD]:
    """Two small NGDs over the random-graph schema of ``_mutated_pair``."""
    knows = Pattern.from_edges(
        "knows", nodes=[("x", "person"), ("y", "person")], edges=[("x", "y", "knows")]
    )
    chain = Pattern.from_edges(
        "chain",
        nodes=[("x", "person"), ("y", "city"), ("z", WILDCARD)],
        edges=[("x", "y", "near"), ("y", "z", "likes")],
    )
    return [
        NGD.from_text(knows, "", "x.val >= y.val", name="val_order"),
        NGD.from_text(chain, "x.val > 0", "y.val + z.val > 0", name="chain_sum"),
    ]


def _mutated_pair(seed: int, operations: int = 220) -> tuple[Graph, Graph]:
    """Build two graphs (one per backend) through one interleaved op sequence.

    The sequence mixes node/edge insertion, edge removal, node removal, and
    attribute updates, exercising every index-maintenance path of both
    engines identically.
    """
    rng = random.Random(seed)
    graphs = (Graph("parity", store="dict"), Graph("parity", store="indexed"))
    labels = ["person", "city", "thing"]
    edge_labels = ["knows", "likes", "near"]
    next_id = 0
    for _ in range(operations):
        live = [node.id for node in graphs[0].nodes()]
        op = rng.random()
        if op < 0.45 or len(live) < 2:
            attrs = {"val": rng.randint(-40, 40)}
            label = rng.choice(labels)
            for graph in graphs:
                graph.add_node(f"n{next_id}", label, attrs)
            next_id += 1
        elif op < 0.75:
            source, target = rng.choice(live), rng.choice(live)
            label = rng.choice(edge_labels)
            if source != target:
                for graph in graphs:
                    graph.add_edge(source, target, label)
        elif op < 0.85:
            edges = list(graphs[0].edges())
            if edges:
                victim = rng.choice(edges)
                for graph in graphs:
                    graph.remove_edge(victim.source, victim.target, victim.label)
        elif op < 0.92:
            victim = rng.choice(live)
            for graph in graphs:
                graph.remove_node(victim)
        else:
            target = rng.choice(live)
            value = rng.randint(-40, 40)
            for graph in graphs:
                graph.set_attribute(target, "val", value)
    return graphs


@pytest.mark.parametrize("seed", range(6))
class TestBackendParity:
    def test_interleaved_mutations_keep_engines_identical(self, seed):
        dict_graph, indexed_graph = _mutated_pair(seed)
        dict_graph.validate_consistency()
        indexed_graph.validate_consistency()
        assert dict_graph == indexed_graph
        assert dict_graph.labels() == indexed_graph.labels()
        assert dict_graph.edge_labels() == indexed_graph.edge_labels()
        for node in dict_graph.nodes():
            assert dict_graph.successors(node.id) == indexed_graph.successors(node.id)
            assert dict_graph.predecessors(node.id) == indexed_graph.predecessors(node.id)
            assert dict_graph.neighbours(node.id) == indexed_graph.neighbours(node.id)
            assert dict_graph.degree(node.id) == indexed_graph.degree(node.id)
            for label in dict_graph.edge_labels():
                assert frozenset(dict_graph.successors_by_label(node.id, label)) == frozenset(
                    indexed_graph.successors_by_label(node.id, label)
                )

    def test_dect_violations_identical(self, seed):
        dict_graph, indexed_graph = _mutated_pair(seed)
        rules = _random_rules(seed)
        dict_result = frozenset(dect(dict_graph, rules).violations)
        indexed_result = frozenset(dect(indexed_graph, rules).violations)
        assert dict_result == indexed_result

    def test_inc_dect_deltas_identical(self, seed):
        dict_graph, indexed_graph = _mutated_pair(seed)
        if dict_graph.edge_count() == 0:
            pytest.skip("mutation sequence left no edges to update")
        rules = _random_rules(seed)
        generator = UpdateGenerator(seed=seed + 100)
        delta = generator.generate(dict_graph, size=max(1, dict_graph.edge_count() // 5))
        results = []
        for graph in (dict_graph, indexed_graph):
            outcome = inc_dect(graph, rules, delta)
            results.append(
                (frozenset(outcome.introduced()), frozenset(outcome.removed()))
            )
        assert results[0] == results[1]

    def test_apply_update_keeps_consistency_on_both(self, seed):
        dict_graph, indexed_graph = _mutated_pair(seed)
        if dict_graph.edge_count() == 0:
            pytest.skip("mutation sequence left no edges to update")
        generator = UpdateGenerator(seed=seed + 31)
        delta = generator.generate(dict_graph, size=max(1, dict_graph.edge_count() // 4))
        updated_dict = apply_update(dict_graph, delta)
        updated_indexed = apply_update(indexed_graph, delta)
        updated_dict.validate_consistency()
        updated_indexed.validate_consistency()
        assert updated_dict == updated_indexed

    def test_signature_index_parity_after_mutations(self, seed):
        dict_graph, indexed_graph = _mutated_pair(seed)
        signatures = {
            (dict_graph.node(e.source).label, e.label, dict_graph.node(e.target).label)
            for e in dict_graph.edges()
        }
        for source_label, edge_label, target_label in signatures:
            expected = {e.key() for e in dict_graph.edges_with_signature(source_label, edge_label, target_label)}
            actual = {e.key() for e in indexed_graph.edges_with_signature(source_label, edge_label, target_label)}
            assert expected == actual
        # wildcard endpoint queries go through the generic signature walk
        for edge_label in dict_graph.edge_labels():
            expected = {e.key() for e in dict_graph.edges_with_signature(WILDCARD, edge_label, WILDCARD)}
            actual = {e.key() for e in indexed_graph.edges_with_signature(WILDCARD, edge_label, WILDCARD)}
            assert expected == actual


# ------------------------------------------------------- deterministic ordering


_ORDER_SCRIPT = r"""
import sys
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern
from repro.matching.matchn import HomomorphismMatcher

graph = Graph(store=sys.argv[1])
for index in range(40):
    graph.add_node(f"p{index}", "person", {"val": index})
for index in range(40):
    graph.add_edge(f"p{index}", f"p{(index * 7 + 3) % 40}", "knows")
    graph.add_edge(f"p{index}", f"p{(index * 11 + 5) % 40}", "knows")
pattern = Pattern.from_edges(
    "knows", nodes=[("x", "person"), ("y", "person")], edges=[("x", "y", "knows")]
)
for match in HomomorphismMatcher(graph, pattern).matches():
    print(match["x"], match["y"])
"""


_COSTS_SCRIPT = r"""
import sys
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.graph.updates import UpdateGenerator, apply_update
from repro.detect import dect, inc_dect, p_dect, pinc_dect

config = KBConfig(
    name="det", num_entities=120, num_entity_types=4, num_value_relations=3,
    num_link_relations=3, values_per_entity=3, links_per_entity=1.0, seed=5,
)
graph = knowledge_graph(config, store=sys.argv[1])
rules = benchmark_rules(graph, count=6, max_diameter=3, seed=0)
delta = UpdateGenerator(seed=7).generate(graph, size=max(1, graph.edge_count() // 10))
updated = apply_update(graph, delta)
print("dect", dect(graph, rules).cost)
print("pdect", p_dect(graph, rules, processors=4).cost)
print("inc", inc_dect(graph, rules, delta, graph_after=updated).cost)
print("pinc", pinc_dect(graph, rules, delta, processors=4, graph_after=updated).cost)
print("delta", [(u.is_insertion, str(u.source), str(u.target), u.label) for u in delta])

# induced-subgraph edge order feeds the vertex-cut partitioner: both must be
# hash-seed independent (edges_between walks insertion-ordered adjacency)
from repro.graph.neighborhood import d_neighbor_of_nodes
from repro.graph.partition import greedy_vertex_cut

region = d_neighbor_of_nodes(graph, list(graph.node_ids())[:8], hops=2)
print("region_edges", [e.key() for e in region.edges()])
cut = greedy_vertex_cut(region, 3)
print("fragments", [sorted(map(str, f.nodes)) for f in cut.fragments])
"""


class TestDeterministicEnumeration:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_match_order_stable_across_hash_seeds(self, backend, tmp_path):
        """Enumeration order must survive string-hash randomization.

        The old matcher sorted candidates with ``key=repr`` to paper over
        set-iteration nondeterminism; the store's insertion rank replaces
        that.  Running the same match in subprocesses with different
        ``PYTHONHASHSEED`` values is the only way to actually vary the hash
        seed, so that is what this regression test does.
        """
        script = tmp_path / "enumerate_matches.py"
        script.write_text(_ORDER_SCRIPT, encoding="utf-8")
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for hash_seed in ("1", "2", "99"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
            result = subprocess.run(
                [sys.executable, str(script), backend],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert outputs[0].strip(), "matcher produced no matches"

    @pytest.mark.parametrize("backend", MUTABLE_BACKENDS)
    def test_detection_costs_stable_across_hash_seeds(self, backend, tmp_path):
        """Algorithm costs must be pure functions of (graph, rules, Δ, seed).

        Guards the fixed hash-order leaks: ``UpdateGenerator`` sampling labels
        from frozensets and embedding ``id(graph)`` in new-node ids, and
        ``candidate_nodes`` returning label-index iteration order.
        """
        script = tmp_path / "costs.py"
        script.write_text(_COSTS_SCRIPT, encoding="utf-8")
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
            result = subprocess.run(
                [sys.executable, str(script), backend],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1, f"costs varied with PYTHONHASHSEED: {outputs}"

    def test_match_order_is_insertion_order_ranked(self):
        graph = Graph()
        # insert in an order that disagrees with lexicographic order
        for node_id in ("zz", "mm", "aa"):
            graph.add_node(node_id, "person", {"val": 1})
        for source in ("zz", "mm", "aa"):
            for target in ("zz", "mm", "aa"):
                if source != target:
                    graph.add_edge(source, target, "knows")
        pattern = Pattern.from_edges(
            "knows", nodes=[("x", "person"), ("y", "person")], edges=[("x", "y", "knows")]
        )
        first_xs = [m["x"] for m in HomomorphismMatcher(graph, pattern).matches()]
        # x candidates must be enumerated by insertion rank, not repr order
        assert first_xs[0] == "zz"
        ranks = [graph.node_rank(x) for x in dict.fromkeys(first_xs)]
        assert ranks == sorted(ranks)

    def test_node_rank_is_monotonic_and_survives_removal(self):
        for backend in MUTABLE_BACKENDS:
            graph = Graph(store=backend)
            graph.add_node("a", "x")
            graph.add_node("b", "x")
            graph.remove_node("a")
            graph.add_node("c", "x")
            assert graph.node_rank("b") < graph.node_rank("c")
            with pytest.raises(KeyError):
                graph.node_rank("a")


# -------------------------------------------------------- subgraph construction


class TestAdjacencyBuiltSubgraphs:
    def _reference_induced(self, graph: Graph, wanted: set) -> Graph:
        """The old O(|E|) implementation, kept here as the oracle."""
        sub = Graph(f"{graph.name}[oracle]", store=graph.store_backend)
        for node_id in wanted:
            node = graph.node(node_id)
            sub.add_node(node.id, node.label, node.attributes)
        for edge in graph.edges():
            if edge.source in wanted and edge.target in wanted:
                sub.add_edge(edge.source, edge.target, edge.label)
        return sub

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_induced_subgraph_matches_edge_scan_oracle_on_large_sparse_graph(self, backend):
        graph = random_labeled_graph(
            3000, 4500, num_labels=12, num_edge_labels=6, seed=5, store=backend
        )
        rng = random.Random(9)
        wanted = set(rng.sample(sorted(graph.node_ids()), 400))
        fast = graph.induced_subgraph(wanted)
        oracle = self._reference_induced(graph, wanted)
        assert fast == oracle
        fast.validate_consistency()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_neighborhood_extraction_matches_oracle(self, backend):
        graph = random_labeled_graph(
            800, 1600, num_labels=6, num_edge_labels=4, seed=3, store=backend
        )
        seeds = [node_id for node_id in list(graph.node_ids())[:10]]
        fast = d_neighbor_of_nodes(graph, seeds, hops=2)
        slow_union: set = set()
        from repro.graph.neighborhood import nodes_within_hops

        for seed in seeds:
            slow_union |= nodes_within_hops(graph, seed, 2)
        oracle = self._reference_induced(graph, slow_union)
        assert fast == oracle

    @pytest.mark.parametrize("backend", MUTABLE_BACKENDS)
    def test_copy_clone_fast_path_is_equal_and_independent(self, backend):
        graph = random_labeled_graph(200, 400, num_labels=5, num_edge_labels=3, seed=8, store=backend)
        clone = graph.copy()
        assert clone == graph
        assert clone.store_backend == backend
        some_edge = next(iter(graph.edges()))
        clone.remove_edge(some_edge.source, some_edge.target, some_edge.label)
        assert graph.has_edge(some_edge.source, some_edge.target, some_edge.label)
        clone.validate_consistency()
        graph.validate_consistency()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_update_neighborhood_consistent(self, backend):
        graph = random_labeled_graph(400, 900, num_labels=5, num_edge_labels=4, seed=2, store=backend)
        generator = UpdateGenerator(seed=4)
        delta = generator.generate(graph, size=40)
        region = update_neighborhood(graph, delta, hops=2)
        region.validate_consistency()
        assert region.is_subgraph_of(graph)


# ----------------------------------------------------------- zero-copy views


class TestReadViews:
    def test_views_compare_equal_to_frozensets(self):
        graph = Graph(store="indexed")
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_node("c", "city")
        graph.add_edge("a", "b", "knows")
        graph.add_edge("a", "c", "near")
        assert graph.nodes_with_label("person") == frozenset({"a", "b"})
        assert frozenset({"a", "b"}) == graph.nodes_with_label("person")
        assert graph.successors_by_label("a", "knows") == frozenset({"b"})
        assert graph.out_edge_labels("a") == frozenset({"knows", "near"})
        assert ("b", "knows") in graph.successors("a")
        assert len(graph.successors("a")) == 2

    def test_indexed_views_are_zero_copy(self):
        graph = Graph(store="indexed")
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        view = graph.nodes_with_label("person")
        assert set(view) == {"a", "b"}
        graph.add_node("c", "person")
        # the view is live: it reflects mutations made after it was taken
        assert set(view) == {"a", "b", "c"}

    def test_dict_store_reads_are_defensive_copies(self):
        graph = Graph(store="dict")
        graph.add_node("a", "person")
        snapshot = graph.nodes_with_label("person")
        graph.add_node("b", "person")
        assert set(snapshot) == {"a"}

    def test_set_operations_on_views(self):
        graph = Graph(store="indexed")
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_node("c", "city")
        graph.add_edge("a", "c", "near")
        graph.add_edge("b", "c", "near")
        sources = graph.predecessors_by_label("c", "near")
        assert set(sources) & {"a", "x"} == {"a"}
        anchored = {"a", "b", "zz"}
        anchored.intersection_update(sources)
        assert anchored == {"a", "b"}


# ------------------------------------------------------------ frozen CSR store


class TestCsrStore:
    """The ROADMAP's frozen compressed-sparse-row engine."""

    def _sample_graph(self) -> Graph:
        graph = random_labeled_graph(300, 700, num_labels=8, num_edge_labels=5, seed=11)
        return graph

    def test_with_backend_round_trip_and_adjacency_parity(self):
        graph = self._sample_graph()
        csr = graph.with_backend("csr")
        assert csr.store_backend == "csr"
        assert csr == graph
        csr.validate_consistency()
        for node in graph.nodes():
            assert frozenset(graph.successors(node.id)) == frozenset(csr.successors(node.id))
            assert frozenset(graph.predecessors(node.id)) == frozenset(csr.predecessors(node.id))
            assert graph.degree(node.id) == csr.degree(node.id)
            assert graph.neighbours(node.id) == csr.neighbours(node.id)
            assert frozenset(graph.out_edge_labels(node.id)) == frozenset(csr.out_edge_labels(node.id))
            for label in graph.edge_labels():
                assert frozenset(graph.successors_by_label(node.id, label)) == frozenset(
                    csr.successors_by_label(node.id, label)
                )
                assert frozenset(graph.predecessors_by_label(node.id, label)) == frozenset(
                    csr.predecessors_by_label(node.id, label)
                )

    def test_mutation_raises_after_freeze(self):
        graph = self._sample_graph().with_backend("csr")
        graph.node_rank(next(iter(graph.node_ids())))  # building reads don't freeze
        list(graph.successors(next(iter(graph.node_ids()))))  # adjacency read freezes
        assert graph.store.frozen
        some_edge = next(iter(graph.edges()))
        with pytest.raises(GraphError):
            graph.add_node("fresh", "label")
        with pytest.raises(GraphError):
            graph.add_edge(some_edge.source, some_edge.target, "new-label")
        with pytest.raises(GraphError):
            graph.set_attribute(some_edge.source, "val", 1)

    def test_removal_refused_even_while_building(self):
        graph = Graph(store="csr")
        graph.add_node("a", "x")
        graph.add_node("b", "x")
        graph.add_edge("a", "b", "e")
        with pytest.raises(GraphError):
            graph.remove_edge("a", "b", "e")
        with pytest.raises(GraphError):
            graph.remove_node("a")

    def test_apply_update_refused_on_frozen_graph(self):
        graph = self._sample_graph().with_backend("csr")
        generator = UpdateGenerator(seed=3)
        delta = generator.generate(graph, size=5)
        with pytest.raises(GraphError):
            apply_update(graph, delta)

    def test_induced_subgraph_and_signature_queries(self):
        graph = self._sample_graph()
        csr = graph.with_backend("csr")
        wanted = sorted(graph.node_ids())[:60]
        assert csr.induced_subgraph(wanted) == graph.induced_subgraph(wanted)
        for edge in list(graph.edges())[:25]:
            signature = (
                graph.node(edge.source).label,
                edge.label,
                graph.node(edge.target).label,
            )
            expected = {e.key() for e in graph.edges_with_signature(*signature)}
            assert {e.key() for e in csr.edges_with_signature(*signature)} == expected

    def test_views_support_len_contains_and_set_operations(self):
        graph = Graph(store="csr")
        for name in ("a", "b", "c", "d"):
            graph.add_node(name, "person")
        graph.add_edge("a", "b", "knows")
        graph.add_edge("a", "c", "knows")
        graph.add_edge("a", "d", "likes")
        view = graph.successors_by_label("a", "knows")
        assert len(view) == 2
        assert "b" in view and "d" not in view
        assert view == frozenset({"b", "c"})
        assert set(view) & {"b", "zz"} == {"b"}
        pairs = graph.successors("a")
        assert len(pairs) == 3
        assert ("d", "likes") in pairs and ("d", "knows") not in pairs

    def test_detection_matches_mutable_backends(self):
        graph = self._sample_graph()
        rules = _random_rules(0)
        # the random schema has no 'person' labels here; use label-wildcard rules
        pattern = Pattern.from_edges(
            "link", nodes=[("x", WILDCARD), ("y", WILDCARD)], edges=[("x", "y", "e0")]
        )
        rules = [NGD.from_text(pattern, "", "x.val >= y.val", name="wild_order")]
        expected = frozenset(dect(graph, rules).violations)
        got = dect(graph.with_backend("csr"), rules)
        assert frozenset(got.violations) == expected
        assert got.violations


# ----------------------------------------------------------- persistent engine


class TestPersistentStore:
    """Durability-specific behaviour of the SQLite-backed ``persistent`` engine.

    Cross-backend parity (violations, determinism, index consistency) is
    covered by the parametrized suites above, which auto-enroll every
    registered engine; here we exercise what only a disk-backed store has:
    close/reopen round trips, rank persistence across removals, and clone
    isolation from the backing file.
    """

    def _populated(self, path):
        from repro.storage import PersistentStore

        store = PersistentStore(path)
        graph = Graph("durable", store=store)
        graph.add_node("a", "person", {"val": 3})
        graph.add_node("b", "person", {"val": 5})
        graph.add_node("c", "city", {"val": -1})
        graph.add_edge("a", "b", "knows")
        graph.add_edge("b", "c", "near")
        return graph

    def test_registered_in_engine_registry(self):
        assert "persistent" in STORE_REGISTRY
        assert STORE_REGISTRY["persistent"].supports_mutation

    def test_reopen_round_trip_preserves_content_and_ranks(self, tmp_path):
        from repro.storage import PersistentStore

        path = str(tmp_path / "graph.db")
        graph = self._populated(path)
        graph.remove_node("b")  # leaves a rank gap that must survive reopen
        graph.add_node("d", "person", {"val": 9})
        expected_ranks = {n.id: graph.store.node_rank(n.id) for n in graph.nodes()}
        graph.store.close()

        reopened = Graph("durable", store=PersistentStore.open(path))
        assert sorted(reopened.node_ids()) == ["a", "c", "d"]
        assert {n.id: reopened.store.node_rank(n.id) for n in reopened.nodes()} == expected_ranks
        assert reopened.node("d").attributes["val"] == 9
        assert not reopened.has_edge("a", "b", "knows")
        reopened.store.validate()

    def test_reopened_graph_detects_identically(self, tmp_path):
        from repro.storage import PersistentStore

        path = str(tmp_path / "parity.db")
        reference, _ = _mutated_pair(3)
        store = PersistentStore(path)
        durable = Graph("parity", store=store)
        for node in reference.nodes():
            durable.add_node(node.id, node.label, dict(node.attributes))
        for edge in reference.edges():
            durable.add_edge(edge.source, edge.target, edge.label)
        store.flush()
        store.close()
        reopened = Graph("parity", store=PersistentStore.open(path))
        rules = _random_rules(3)
        assert frozenset(dect(reopened, rules).violations) == frozenset(
            dect(reference, rules).violations
        )

    def test_clone_is_independent_of_backing_file(self, tmp_path):
        graph = self._populated(str(tmp_path / "clone.db"))
        snapshot = graph.copy()
        graph.remove_node("a")
        assert snapshot.has_node("a")
        assert snapshot.has_edge("a", "b", "knows")
        assert not graph.has_node("a")
        snapshot.store.validate()
        graph.store.validate()

    def test_nested_tuple_node_ids_round_trip(self, tmp_path):
        from repro.storage import PersistentStore

        path = str(tmp_path / "nested.db")
        store = PersistentStore(path)
        graph = Graph("nested", store=store)
        graph.add_node(("a", (1, 2)), "person", {"val": 1})
        graph.add_node(("b", ("x", (3,))), "person", {"val": 2})
        graph.add_edge(("a", (1, 2)), ("b", ("x", (3,))), "knows")
        store.close()

        # ('a', (1, 2)) must decode back to itself, not the unhashable
        # ('a', [1, 2]) — the store may not accept ids it cannot read back
        reopened = Graph("nested", store=PersistentStore.open(path))
        assert reopened.has_node(("a", (1, 2)))
        assert reopened.has_edge(("a", (1, 2)), ("b", ("x", (3,))), "knows")
        assert reopened.node(("a", (1, 2))).attributes["val"] == 1
        reopened.store.validate()

    def test_non_json_attribute_values_are_rejected(self, tmp_path):
        from repro.storage import PersistentStore

        graph = Graph("strict", store=PersistentStore(str(tmp_path / "strict.db")))
        # default=str would silently persist str(object) and reopen with a
        # different value type than the live process held; fail loudly instead
        with pytest.raises(GraphError, match="JSON"):
            graph.add_node("a", "person", {"when": object()})

    def test_file_backed_store_defaults_to_crash_safe_journal(self, tmp_path):
        from repro.storage import PersistentStore

        safe = PersistentStore(str(tmp_path / "safe.db"))
        assert safe._connection.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        safe.close()
        fast = PersistentStore(str(tmp_path / "fast.db"), fast_unsafe=True)
        assert fast._connection.execute("PRAGMA journal_mode").fetchone()[0] == "memory"
        fast.close()

    def test_csr_image_is_cached_and_invalidated(self, tmp_path):
        graph = self._populated(str(tmp_path / "csr.db"))
        first = graph.store.csr_store()
        assert graph.store.csr_store() is first
        graph.add_node("z", "person", {"val": 0})
        rebuilt = graph.store.csr_store()
        assert rebuilt is not first
        assert rebuilt.has_node("z")

    def test_non_json_node_ids_are_refused(self, tmp_path):
        graph = Graph(store="persistent")
        with pytest.raises(GraphError):
            graph.add_node(object(), "person")

    def test_detection_parity_across_planner_and_execution_modes(self):
        """Acceptance: persistent detection is byte-identical to indexed
        across planner on/off and simulated/process execution."""
        from repro.detect import DetectionOptions, Detector
        from repro.datasets.rules import benchmark_rules
        from repro.datasets.kb import KBConfig, knowledge_graph

        config = KBConfig(
            name="persist-parity",
            num_entities=60,
            num_entity_types=4,
            num_value_relations=3,
            num_link_relations=2,
            values_per_entity=2,
            links_per_entity=1.0,
            seed=11,
        )
        base = knowledge_graph(config)
        rules = benchmark_rules(base, count=4, max_diameter=3, seed=11)
        reference = frozenset(dect(base, rules).violations)
        assert reference, "workload must produce violations for parity to mean anything"

        durable = base.with_backend("persistent")
        for use_planner in (True, False):
            serial = Detector(
                rules, engine="batch", options=DetectionOptions(use_planner=use_planner)
            ).run(durable)
            assert frozenset(serial.violations) == reference
            simulated = Detector(
                rules,
                engine="parallel",
                processors=2,
                options=DetectionOptions(use_planner=use_planner),
            ).run(durable)
            assert frozenset(simulated.violations) == reference
        processes = Detector(
            rules,
            engine="parallel",
            processors=2,
            options=DetectionOptions(execution="processes"),
        ).run(durable)
        assert frozenset(processes.violations) == reference
