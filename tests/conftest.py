"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import example_rules, phi1, phi2, phi3, phi4
from repro.core.ngd import NGD, RuleSet
from repro.datasets.figure1 import figure1_g1, figure1_g2, figure1_g3, figure1_g4
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern


@pytest.fixture
def triangle_graph() -> Graph:
    """A small labelled triangle with numeric attributes, used across unit tests."""
    graph = Graph("triangle")
    graph.add_node("a", "person", {"val": 10, "age": 30})
    graph.add_node("b", "person", {"val": 20, "age": 25})
    graph.add_node("c", "city", {"val": 5})
    graph.add_edge("a", "b", "knows")
    graph.add_edge("b", "c", "lives_in")
    graph.add_edge("a", "c", "lives_in")
    return graph


@pytest.fixture
def g1() -> Graph:
    return figure1_g1()


@pytest.fixture
def g2() -> Graph:
    return figure1_g2()


@pytest.fixture
def g3() -> Graph:
    return figure1_g3()


@pytest.fixture
def g4() -> Graph:
    return figure1_g4()


@pytest.fixture
def figure1_rules() -> RuleSet:
    return example_rules()


@pytest.fixture
def rule_phi1() -> NGD:
    return phi1()


@pytest.fixture
def rule_phi2() -> NGD:
    return phi2()


@pytest.fixture
def rule_phi3() -> NGD:
    return phi3()


@pytest.fixture
def rule_phi4() -> NGD:
    return phi4()


@pytest.fixture
def knows_pattern() -> Pattern:
    """Pattern: person --knows--> person."""
    return Pattern.from_edges(
        "knows",
        nodes=[("x", "person"), ("y", "person")],
        edges=[("x", "y", "knows")],
    )


@pytest.fixture
def knows_rule(knows_pattern) -> NGD:
    """Rule: if x knows y then x.val >= y.val — violated by the triangle fixture (10 < 20)."""
    return NGD.from_text(knows_pattern, "", "x.val >= y.val", name="val_order")
