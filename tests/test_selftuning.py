"""Self-tuning execution: adaptive replanning, history priors, warm pools.

Three layers are covered:

* the :class:`~repro.matching.adaptive.AdaptiveController` unit semantics
  (minimum samples, drift detection, memoised suffix revision);
* end-to-end parity — adaptive on/off must produce byte-identical
  ``ViolationSet``\\ s across every store backend and execution mode, and
  the observe/replan loop must actually *save work* on the correlated-hub
  workload the static planner misjudges;
* the :class:`~repro.detect.parallel.WarmExecutorPool` — warm runs must
  match cold runs byte-for-byte, including across invalidation and
  registry version bumps, and one-run spool directories must never
  outlive their run.
"""

from __future__ import annotations

import glob
import os
import tempfile

import pytest

from repro.detect import DetectionOptions, Detector, WarmExecutorPool
from repro.errors import SessionError
from repro.experiments.runner import _correlated_hub_graph, _selftuning_rules
from repro.graph.updates import UpdateGenerator
from repro.matching.adaptive import (
    MIN_SAMPLES,
    AdaptiveController,
    CardinalityHistory,
    resolve_adaptive,
)
from repro.matching.plan import compile_plans, save_plans

BACKENDS = ("dict", "indexed", "csr")


@pytest.fixture(scope="module")
def hub_graph():
    return _correlated_hub_graph(roots=60, wide=12, narrow=3, survivor_stride=53)


@pytest.fixture(scope="module")
def hub_rules():
    return _selftuning_rules()


def _run(graph, rules, *, adaptive, backend=None, engine="batch", processors=None, **options):
    detector = Detector(
        rules,
        engine=engine,
        processors=processors,
        store=backend,
        options=DetectionOptions(adaptive=adaptive, **options),
    )
    return detector.run(graph), detector


# --------------------------------------------------------------- controller


class TestAdaptiveController:
    def _plan_and_wide_step(self, hub_graph, hub_rules):
        plan = compile_plans(hub_graph, hub_rules)[0]
        # the premise-dead wide step ('z' over label 'b') sits after the
        # narrow 'y' step in the statistics-compiled order
        steps = {step.variable: step for step in plan.steps}
        return plan, steps["z"]

    def test_no_drift_below_min_samples(self, hub_graph, hub_rules):
        plan, wide = self._plan_and_wide_step(hub_graph, hub_rules)
        controller = AdaptiveController(plan)
        for _ in range(MIN_SAMPLES - 1):
            controller.observe(wide, 0)
        assert controller.order_for(plan.order, 0) == plan.order

    def test_drift_revises_suffix(self, hub_graph, hub_rules):
        plan, wide = self._plan_and_wide_step(hub_graph, hub_rules)
        controller = AdaptiveController(plan)
        for _ in range(MIN_SAMPLES):
            controller.observe(wide, 0)
        revised = controller.order_for(plan.order, 1)
        assert revised != plan.order, "drifted wide step should move forward"
        assert revised[:1] == plan.order[:1], "bound prefix must be preserved"
        assert sorted(revised) == sorted(plan.order)
        assert controller.replans == 1
        # memoised: asking again neither recomputes nor double-counts
        assert controller.order_for(plan.order, 1) == revised
        assert controller.replans == 1

    def test_observations_matching_estimates_never_drift(self, hub_graph, hub_rules):
        plan, wide = self._plan_and_wide_step(hub_graph, hub_rules)
        controller = AdaptiveController(plan)
        for _ in range(MIN_SAMPLES * 2):
            controller.observe(wide, int(wide.estimated_candidates) or 1)
        assert controller.order_for(plan.order, 1) == plan.order
        assert controller.replans == 0

    def test_threshold_env(self, hub_graph, hub_rules, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE_DRIFT", "1000000")
        plan, wide = self._plan_and_wide_step(hub_graph, hub_rules)
        controller = AdaptiveController(plan)
        for _ in range(MIN_SAMPLES):
            controller.observe(wide, 0)
        assert controller.order_for(plan.order, 1) == plan.order

    def test_resolve_adaptive_modes(self, hub_graph, hub_rules, monkeypatch):
        plans = compile_plans(hub_graph, hub_rules)
        assert resolve_adaptive(plans, False) is None
        controllers = resolve_adaptive(plans, True)
        assert controllers is not None and len(controllers) == len(plans)
        assert resolve_adaptive(plans, controllers) is controllers
        monkeypatch.setenv("REPRO_ADAPTIVE_REPLAN", "off")
        assert resolve_adaptive(plans, None) is None
        assert resolve_adaptive((), True) is None


# ------------------------------------------------------------------ parity


class TestAdaptiveParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine,processors", [("batch", None), ("parallel", 4)])
    def test_batch_sets_byte_identical(self, hub_graph, hub_rules, backend, engine, processors):
        static, _ = _run(
            hub_graph, hub_rules, adaptive=False, backend=backend,
            engine=engine, processors=processors,
        )
        adaptive, _ = _run(
            hub_graph, hub_rules, adaptive=True, backend=backend,
            engine=engine, processors=processors,
        )
        assert static.violations.to_json() == adaptive.violations.to_json()
        assert len(static.violations) > 0

    def test_adaptive_saves_work_on_misjudged_workload(self, hub_graph, hub_rules):
        # pinned on: the observe/replan loop rides on compiled plans, so
        # this test must hold even on the REPRO_MATCH_PLANNER=off CI leg
        static, _ = _run(hub_graph, hub_rules, adaptive=False, use_planner=True)
        adaptive, _ = _run(hub_graph, hub_rules, adaptive=True, use_planner=True)
        assert (
            adaptive.stats.total_operations() < static.stats.total_operations()
        ), "the observe/replan loop should cut work on the correlated-hub workload"

    @pytest.mark.parametrize("backend", ("dict", "indexed"))
    @pytest.mark.parametrize("engine,processors", [("incremental", None), ("parallel", 4)])
    def test_incremental_deltas_byte_identical(self, kb_like, backend, engine, processors):
        graph, rules, delta = kb_like
        results = {}
        for adaptive in (False, True):
            detector = Detector(
                rules,
                engine=engine,
                processors=processors,
                store=backend,
                options=DetectionOptions(adaptive=adaptive),
            )
            results[adaptive] = detector.run_incremental(graph, delta).delta
        assert results[False].introduced.to_json() == results[True].introduced.to_json()
        assert results[False].removed.to_json() == results[True].removed.to_json()


@pytest.fixture(scope="module")
def kb_like():
    from repro.datasets.kb import KBConfig, knowledge_graph
    from repro.datasets.rules import benchmark_rules

    graph = knowledge_graph(
        KBConfig(
            name="kb-selftuning-tests",
            num_entities=120,
            num_entity_types=4,
            num_value_relations=4,
            num_link_relations=3,
            values_per_entity=3,
            links_per_entity=2.0,
            error_rate=0.08,
            seed=8,
            hub_link_fraction=0.4,
            num_hubs=2,
        )
    )
    rules = benchmark_rules(graph, count=10, max_diameter=4, seed=2)
    delta = UpdateGenerator(seed=21).generate(graph, 60, insert_ratio=0.5)
    return graph, rules, delta


# ------------------------------------------------------------------ history


class TestCardinalityHistory:
    def test_run_harvests_and_round_trips(self, hub_graph, hub_rules, tmp_path):
        _result, detector = _run(hub_graph, hub_rules, adaptive=True, use_planner=True)
        assert detector.history, "an adaptive run should harvest observations"
        path = tmp_path / "history.json"
        detector.save_history(path)
        loaded = CardinalityHistory.load(path)
        assert loaded
        from repro.matching.plan import GraphStatistics

        stats = GraphStatistics.from_graph(hub_graph)
        priors = loaded.priors_for(hub_rules.rules()[0].name, stats)
        assert priors, "persisted observations should resolve as priors"

    def test_history_informed_compile_moves_dead_step_first(self, hub_graph, hub_rules):
        _result, detector = _run(hub_graph, hub_rules, adaptive=True, use_planner=True)
        cold = compile_plans(hub_graph, hub_rules)[0]
        informed = compile_plans(hub_graph, hub_rules, history=detector.history)[0]
        assert informed.order != cold.order, (
            "the observed near-empty wide step should reorder the next compile"
        )
        # priors are a cost-model input only: matches must be unaffected
        static, _ = _run(hub_graph, hub_rules, adaptive=False)
        informed_result = Detector(hub_rules, engine="batch").run(hub_graph, plans=(informed,))
        assert informed_result.violations.to_json() == static.violations.to_json()

    def test_plans_file_embeds_history(self, hub_graph, hub_rules, tmp_path):
        _result, detector = _run(hub_graph, hub_rules, adaptive=True, use_planner=True)
        path = tmp_path / "plans.json"
        plans = compile_plans(hub_graph, hub_rules, history=detector.history)
        save_plans(plans, path, history=detector.history)
        revived = Detector(
            hub_rules,
            plans_file=str(path),
            options=DetectionOptions(use_planner=True),
        )
        revived.compile_plans(hub_graph)  # adoption happens on first plan fetch
        assert revived.history, "a plans file with embedded history should seed the session"


# ---------------------------------------------------------------- warm pool


class TestWarmPool:
    def test_warm_pool_requires_processes(self, hub_rules):
        with pytest.raises(SessionError):
            Detector(hub_rules, options=DetectionOptions(warm_pool=True))

    def test_warm_matches_cold_and_reuses_crew(self, kb_like):
        graph, rules, _delta = kb_like
        cold = Detector(
            rules,
            engine="auto",
            processors=2,
            options=DetectionOptions(execution="processes"),
        ).run(graph)
        with Detector(
            rules,
            engine="auto",
            processors=2,
            options=DetectionOptions(execution="processes", warm_pool=True),
        ) as detector:
            first = detector.run(graph)
            second = detector.run(graph)
            stats = detector.executor_pool().stats()
            assert stats["misses"] == 1 and stats["hits"] == 1 and stats["warm"]
            # invalidation forces a reload but never changes the answer
            detector.executor_pool().invalidate()
            third = detector.run(graph)
            assert detector.executor_pool().stats()["misses"] == 2
        for result in (first, second, third):
            assert result.violations.to_json() == cold.violations.to_json()
        assert detector.executor_pool().stats()["warm"] is False

    def test_service_pool_survives_version_bump(self, kb_like):
        from repro.service.jobs import SessionManager
        from repro.service.protocol import DetectRequest
        from repro.service.registry import GraphRegistry

        graph, rules, delta = kb_like
        registry = GraphRegistry()
        registry.register("kb", graph)
        manager = SessionManager(registry, catalogs={"cat": rules})
        request = DetectRequest(catalog="cat", engine="auto", processors=2, execution="processes")
        try:
            def violations(records):
                return sorted(
                    (
                        {k: v for k, v in r.items() if k not in ("type", "introduced")}
                        for r in records
                        if r.get("type") == "violation"
                    ),
                    key=str,
                )

            first = violations(manager.stream_detection("kb", request))
            second = violations(manager.stream_detection("kb", request))
            assert first == second
            pool = manager.executor_pool(2)
            assert pool.stats()["hits"] >= 1

            registry.apply_update("kb", delta)
            after, _version = registry.get("kb").snapshot()
            cold = Detector(
                rules,
                engine="auto",
                processors=2,
                options=DetectionOptions(execution="processes"),
            ).run(after)
            bumped = violations(manager.stream_detection("kb", request))
            assert bumped == sorted(
                (v.to_dict() for v in cold.violations), key=str
            ), "post-bump warm job must match a cold run over the new snapshot"
        finally:
            manager.shutdown()
        assert manager.executor_pool(2).stats()["warm"] is False


# ------------------------------------------------------------ spool hygiene


def _spool_dirs() -> set[str]:
    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-exec-*")))


class TestSpoolCleanup:
    def test_abandoned_run_removes_spool(self, kb_like, monkeypatch):
        graph, rules, _delta = kb_like
        monkeypatch.setenv("REPRO_EXECUTION_START_METHOD", "spawn")
        before = _spool_dirs()
        detector = Detector(
            rules,
            engine="auto",
            processors=2,
            options=DetectionOptions(execution="processes"),
        )
        stream = detector.stream(graph)
        next(stream)  # workers are up, the spool exists
        stream.close()  # consumer walks away mid-run
        assert _spool_dirs() == before, "abandoning a run must not leak its spool"

    def test_completed_run_removes_spool(self, kb_like, monkeypatch):
        graph, rules, _delta = kb_like
        monkeypatch.setenv("REPRO_EXECUTION_START_METHOD", "spawn")
        before = _spool_dirs()
        Detector(
            rules,
            engine="auto",
            processors=2,
            options=DetectionOptions(execution="processes"),
        ).run(graph)
        assert _spool_dirs() == before

    def test_warm_pool_shutdown_removes_spool(self, kb_like, monkeypatch):
        graph, rules, _delta = kb_like
        monkeypatch.setenv("REPRO_EXECUTION_START_METHOD", "spawn")
        before = _spool_dirs()
        pool = WarmExecutorPool(2, start_method="spawn")
        try:
            with Detector(
                rules,
                engine="auto",
                processors=2,
                executor_pool=pool,
                options=DetectionOptions(execution="processes"),
            ) as detector:
                detector.run(graph)
            assert _spool_dirs() != before or pool.stats()["warm"], (
                "a live warm pool keeps its runtime spool"
            )
        finally:
            pool.shutdown()
        assert _spool_dirs() == before, "shutdown must drop the pool's spool"
