"""Tests for the detection algorithms: Dect, IncDect and their agreement with ground truth."""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import example_rules, phi4
from repro.core.ngd import NGD, RuleSet
from repro.core.validation import find_violations
from repro.core.violations import ViolationDelta
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import dect, inc_dect
from repro.graph.generators import random_labeled_graph
from repro.graph.pattern import Pattern
from repro.graph.updates import BatchUpdate, NodePayload, UpdateGenerator, apply_update


@pytest.fixture(scope="module")
def kb_graph():
    config = KBConfig(
        name="kb-test",
        num_entities=120,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=1.5,
        error_rate=0.1,
        seed=5,
    )
    return knowledge_graph(config)


@pytest.fixture(scope="module")
def kb_rules(kb_graph):
    return benchmark_rules(kb_graph, count=10, max_diameter=4, seed=1)


class TestDect:
    def test_matches_reference_validation(self, kb_graph, kb_rules):
        result = dect(kb_graph, kb_rules)
        assert result.violations == find_violations(kb_graph, kb_rules)
        assert result.cost > 0
        assert result.algorithm == "Dect"

    def test_planted_errors_are_found(self, kb_graph, kb_rules):
        result = dect(kb_graph, kb_rules)
        assert result.violation_count() > 0

    def test_figure1_detection(self, g4):
        result = dect(g4, RuleSet([phi4()]))
        assert result.violation_count() == 1

    def test_literal_pruning_does_not_change_answers(self, kb_graph, kb_rules):
        with_pruning = dect(kb_graph, kb_rules, use_literal_pruning=True)
        without_pruning = dect(kb_graph, kb_rules, use_literal_pruning=False)
        assert with_pruning.violations == without_pruning.violations

    def test_single_node_pattern_rules(self, triangle_graph):
        pattern = Pattern.from_edges("single", nodes=[("x", "person")])
        rule = NGD.from_text(pattern, "", "x.val < 15", name="small_val")
        result = dect(triangle_graph, RuleSet([rule]))
        assert result.violation_count() == 1  # node b has val 20


class TestIncDectCorrectness:
    def _ground_truth(self, graph, rules, delta):
        before = find_violations(graph, rules)
        after = find_violations(apply_update(graph, delta), rules)
        return ViolationDelta.from_sets(before, after)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("insert_ratio", [0.0, 0.5, 1.0])
    def test_agrees_with_recomputation_on_kb(self, kb_graph, kb_rules, seed, insert_ratio):
        delta = UpdateGenerator(seed=seed).generate(kb_graph, 60, insert_ratio=insert_ratio)
        expected = self._ground_truth(kb_graph, kb_rules, delta)
        result = inc_dect(kb_graph, kb_rules, delta)
        assert result.delta == expected

    def test_agrees_on_random_graph(self):
        graph = random_labeled_graph(150, 450, num_labels=6, num_edge_labels=4, seed=9)
        pattern = Pattern.from_edges(
            "p", nodes=[("a", "L0"), ("b", "L1")], edges=[("a", "b", "e0")]
        )
        rules = RuleSet([NGD.from_text(pattern, "", "a.val <= b.val", name="order")])
        delta = UpdateGenerator(seed=3).generate(graph, 120, insert_ratio=0.5)
        expected = self._ground_truth(graph, rules, delta)
        result = inc_dect(graph, rules, delta)
        assert result.delta == expected

    def test_empty_update_produces_empty_delta(self, kb_graph, kb_rules):
        result = inc_dect(kb_graph, kb_rules, BatchUpdate())
        assert result.delta.is_empty()

    def test_insertion_introduces_violation(self, triangle_graph, knows_rule):
        # b knows c would violate val_order (20 >= 5 holds) — pick an order that fails instead
        delta = BatchUpdate().insert("c", "a", "knows", )
        graph = triangle_graph
        graph.add_node  # no-op, keep fixture as is
        expected = self._ground_truth(graph, RuleSet([knows_rule]), delta)
        result = inc_dect(graph, RuleSet([knows_rule]), delta)
        assert result.delta == expected

    def test_deletion_removes_violation(self, triangle_graph, knows_rule):
        delta = BatchUpdate().delete("a", "b", "knows")
        result = inc_dect(triangle_graph, RuleSet([knows_rule]), delta)
        assert len(result.removed()) == 1
        assert len(result.introduced()) == 0

    def test_mixed_update_on_figure1_g4(self, g4):
        rules = RuleSet([phi4()])
        # delete the real account's status edge and add a second fake-ish account
        delta = BatchUpdate()
        delta.delete("NatWest Help", "NatWest Help/status", "status")
        delta.insert("acct2", "NatWest", "keys", source_payload=NodePayload("account"))
        delta.insert("acct2", "acct2/status", "status", target_payload=NodePayload("boolean", {"val": 1}))
        delta.insert("acct2", "acct2/following", "following", target_payload=NodePayload("integer", {"val": 2}))
        delta.insert("acct2", "acct2/follower", "follower", target_payload=NodePayload("integer", {"val": 1}))
        expected = self._ground_truth(g4, rules, delta)
        result = inc_dect(g4, rules, delta)
        assert result.delta == expected
        # deleting the real account's status removes the only violation (Example 6)
        assert len(result.removed()) == 1

    def test_restrict_to_neighborhood_gives_same_answer(self, kb_graph, kb_rules):
        delta = UpdateGenerator(seed=11).generate(kb_graph, 40, insert_ratio=0.5)
        full = inc_dect(kb_graph, kb_rules, delta)
        localized = inc_dect(kb_graph, kb_rules, delta, restrict_to_neighborhood=True)
        assert full.delta == localized.delta
        assert localized.neighborhood_size is not None

    def test_graph_after_parameter_is_honoured(self, kb_graph, kb_rules):
        delta = UpdateGenerator(seed=13).generate(kb_graph, 30, insert_ratio=0.5)
        updated = apply_update(kb_graph, delta)
        assert inc_dect(kb_graph, kb_rules, delta, graph_after=updated).delta == inc_dect(
            kb_graph, kb_rules, delta
        ).delta


class TestIncDectCostBehaviour:
    def test_cost_grows_with_update_size(self, kb_graph, kb_rules):
        small = UpdateGenerator(seed=2).generate(kb_graph, 10)
        large = UpdateGenerator(seed=2).generate(kb_graph, 150)
        assert inc_dect(kb_graph, kb_rules, small).cost <= inc_dect(kb_graph, kb_rules, large).cost

    def test_incremental_cheaper_than_batch_for_small_updates(self, kb_graph, kb_rules):
        delta = UpdateGenerator(seed=2).generate(kb_graph, max(1, kb_graph.edge_count() // 20))
        assert inc_dect(kb_graph, kb_rules, delta).cost < dect(kb_graph, kb_rules).cost

    def test_batch_cost_independent_of_updates(self, kb_graph, kb_rules):
        assert dect(kb_graph, kb_rules).cost == dect(kb_graph, kb_rules).cost
