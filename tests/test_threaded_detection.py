"""Tests for the thread-pool-based detectors (real parallelism, identical answers)."""

from __future__ import annotations

import pytest

from repro.core.validation import find_violations
from repro.core.violations import ViolationDelta
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import dect, inc_dect
from repro.detect.parallel import threaded_dect, threaded_inc_dect
from repro.graph.updates import BatchUpdate, UpdateGenerator, apply_update


@pytest.fixture(scope="module")
def threaded_graph():
    config = KBConfig(
        name="threaded-kb",
        num_entities=100,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=1.5,
        error_rate=0.1,
        seed=23,
    )
    return knowledge_graph(config)


@pytest.fixture(scope="module")
def threaded_rules(threaded_graph):
    return benchmark_rules(threaded_graph, count=10, max_diameter=4, seed=4)


class TestThreadedDect:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential_batch(self, threaded_graph, threaded_rules, workers):
        expected = dect(threaded_graph, threaded_rules).violations
        result = threaded_dect(threaded_graph, threaded_rules, max_workers=workers)
        assert result.violations == expected
        assert result.algorithm == "ThreadedDect"
        assert result.processors == workers

    def test_stats_are_accumulated(self, threaded_graph, threaded_rules):
        result = threaded_dect(threaded_graph, threaded_rules, max_workers=3)
        assert result.stats.total_operations() > 0
        assert result.cost > 0


class TestThreadedIncDect:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential_incremental(self, threaded_graph, threaded_rules, workers):
        delta = UpdateGenerator(seed=31).generate(threaded_graph, 60, insert_ratio=0.5)
        expected = inc_dect(threaded_graph, threaded_rules, delta).delta
        result = threaded_inc_dect(threaded_graph, threaded_rules, delta, max_workers=workers)
        assert result.delta == expected

    def test_matches_ground_truth_recomputation(self, threaded_graph, threaded_rules):
        delta = UpdateGenerator(seed=37).generate(threaded_graph, 40, insert_ratio=0.5)
        updated = apply_update(threaded_graph, delta)
        truth = ViolationDelta.from_sets(
            find_violations(threaded_graph, threaded_rules), find_violations(updated, threaded_rules)
        )
        result = threaded_inc_dect(threaded_graph, threaded_rules, delta, max_workers=4, graph_after=updated)
        assert result.delta == truth

    def test_empty_update(self, threaded_graph, threaded_rules):
        result = threaded_inc_dect(threaded_graph, threaded_rules, BatchUpdate(), max_workers=2)
        assert result.delta.is_empty()
