"""Durability suite: WAL semantics, checkpoint/recovery, kill -9 survival.

The contract under test (see docs/ARCHITECTURE.md, "The durability layer"):
any state a client saw acknowledged — graph registrations, update versions,
continuous-session violation sets and per-version delta logs — is exactly
reproduced after the service process dies without warning and restarts on
the same ``--data-dir``.  Recovery must equal a never-crashed control, and
a torn final WAL record (the one write that *can* be lost, because it was
never acknowledged) must be truncated silently rather than poison the log.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.builtin_rules import example_rules, phi2
from repro.core.ngd import RuleSet
from repro.graph.graph import Graph
from repro.graph.io import save_graph
from repro.graph.updates import BatchUpdate, NodePayload
from repro.service import DetectionService, ServiceClient
from repro.storage import WriteAheadLog
from repro.storage.checkpoint import DataDirectory, SegmentCache


def multi_area_graph(areas: int = 3, name: str = "areas") -> Graph:
    """Every area violates φ2 (female + male ≠ total), as in the service tests."""
    graph = Graph(name)
    for i in range(areas):
        graph.add_node(f"area{i}", "area")
        graph.add_node(f"f{i}", "integer", {"val": 100 + i})
        graph.add_node(f"m{i}", "integer", {"val": 200 + i})
        graph.add_node(f"t{i}", "integer", {"val": 999})
        graph.add_edge(f"area{i}", f"f{i}", "femalePopulation")
        graph.add_edge(f"area{i}", f"m{i}", "malePopulation")
        graph.add_edge(f"area{i}", f"t{i}", "populationTotal")
    return graph


def _update(i: int) -> BatchUpdate:
    """One violation-changing update per call (fixes, then re-breaks, an area)."""
    area, visit = i % 3, i // 3
    old, new = (f"t{area}", f"t{area}x") if visit % 2 == 0 else (f"t{area}x", f"t{area}")
    value = 999 if visit % 2 else 301 + 2 * area + 200  # fixes φ2, then re-breaks it
    return (
        BatchUpdate()
        .delete(f"area{area}", old, "populationTotal")
        .insert(
            f"area{area}",
            new,
            "populationTotal",
            target_payload=NodePayload("integer", {"val": value}),
        )
    )


# ------------------------------------------------------------------------ WAL


class TestWriteAheadLog:
    def test_append_and_replay_in_lsn_order(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            assert wal.append({"type": "a"}) == 1
            assert wal.append_many([{"type": "b"}, {"type": "c"}]) == 3
            records = list(wal.records())
        assert [r["lsn"] for r in records] == [1, 2, 3]
        assert [r["type"] for r in records] == ["a", "b", "c"]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_many([{"type": "a"}, {"type": "b"}])
        with open(path, "ab") as handle:
            handle.write(b'deadbeef {"lsn":3,"type":"half-writ')  # no newline, bad CRC
        with WriteAheadLog(path) as wal:
            assert wal.last_lsn == 2
            assert [r["lsn"] for r in wal.records()] == [1, 2]
        # the torn bytes are physically gone, not just skipped
        assert b"half-writ" not in path.read_bytes()

    def test_corrupt_crc_marks_the_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_many([{"type": "a"}, {"type": "b"}, {"type": "c"}])
        lines = path.read_bytes().splitlines(keepends=True)
        flipped = lines[1][:9] + (b"X" if lines[1][9:10] != b"X" else b"Y") + lines[1][10:]
        path.write_bytes(lines[0] + flipped + lines[2])
        with WriteAheadLog(path) as wal:
            # corruption can only be a tail: everything from the bad record on goes
            assert wal.last_lsn == 1
            assert [r["lsn"] for r in wal.records()] == [1]

    def test_truncate_through_drops_prefix_and_keeps_lsns(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append_many([{"type": t} for t in "abcd"])
        wal.truncate_through(2)
        assert [r["lsn"] for r in wal.records()] == [3, 4]
        assert wal.append({"type": "e"}) == 5
        wal.close()
        reopened = WriteAheadLog(path, start_lsn=3)
        assert reopened.last_lsn == 5
        reopened.close()

    def test_start_lsn_positions_an_empty_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", start_lsn=42)
        assert wal.last_lsn == 41
        assert wal.append({"type": "a"}) == 42
        wal.close()

    def test_stale_prefix_from_interrupted_truncation_is_kept(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_many([{"type": t} for t in "abcde"])
        # crash between the checkpoint's manifest swing (cut_lsn=2) and its
        # truncate_through: the file still holds lsns 1..5.  Reopening at
        # the cut must keep the acknowledged live suffix 3..5 — treating
        # the stale prefix as a torn tail would wipe the whole log.
        with WriteAheadLog(path, start_lsn=3) as wal:
            assert wal.last_lsn == 5
            assert [r["lsn"] for r in wal.records()] == [1, 2, 3, 4, 5]
            assert wal.append({"type": "f"}) == 6

    def test_stale_prefix_and_torn_tail_together(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_many([{"type": t} for t in "abcd"])
        with open(path, "ab") as handle:
            handle.write(b'deadbeef {"lsn":5,"type":"half-writ')
        with WriteAheadLog(path, start_lsn=3) as wal:
            # the stale prefix (1..2) survives, the torn record is gone
            assert wal.last_lsn == 4
            assert [r["lsn"] for r in wal.records()] == [1, 2, 3, 4]
        assert b"half-writ" not in path.read_bytes()

    def test_non_serializable_payload_fails_loudly(self, tmp_path):
        from repro.errors import ReproError

        with WriteAheadLog(tmp_path / "wal.log") as wal:
            with pytest.raises(ReproError, match="JSON"):
                wal.append({"type": "a", "when": object()})
            # nothing half-written: the log is untouched and LSNs unspent
            assert wal.last_lsn == 0
            assert wal.append({"type": "b"}) == 1


# ------------------------------------------------------- in-process recovery


def _drive(client: ServiceClient, updates: int, session: bool = True) -> dict:
    """Register graph + catalog, open a session, apply updates; return acked state."""
    client.register_graph("areas", multi_area_graph())
    client.register_rules("mine", example_rules())
    sid = None
    if session:
        sid = client.create_session("areas", catalog="mine")["session"]
    for i in range(updates):
        client.post_update("areas", _update(i))
    acked = {
        "graph": client.graph_info("areas"),
        "session": client.session_state(sid) if sid else None,
        "deltas": client.session_deltas(sid, since=1) if sid else None,
    }
    return acked


class TestInProcessRecovery:
    def test_crash_recovery_equals_never_crashed_control(self, tmp_path):
        data_dir = tmp_path / "data"
        crashed = DetectionService(port=0, data_dir=str(data_dir)).start()
        acked = _drive(ServiceClient(crashed.url), updates=5)
        # simulated crash: the service is abandoned without stop(); its WAL
        # handle stays open and nothing is flushed beyond what appends fsync'd

        control = DetectionService(port=0).start()
        expected = _drive(ServiceClient(control.url), updates=5)
        control.stop()

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            client = ServiceClient(recovered.url)
            state = {
                "graph": client.graph_info("areas"),
                "session": client.session_state(acked["session"]["session"]),
                "deltas": client.session_deltas(acked["session"]["session"], since=1),
            }
            # byte-identical to both what was acknowledged pre-crash and to a
            # control that never crashed (determinism across process states)
            assert state == acked
            assert state == expected
            assert recovered.persistence.recovered["replayed"] > 0
            # the recovered service keeps working: updates advance sessions
            reply = client.post_update("areas", _update(5))
            assert reply["version"] == acked["graph"]["version"] + 1
            assert reply["sessions_advanced"] == 1

    def test_recovery_from_checkpoint_plus_wal_suffix(self, tmp_path):
        data_dir = tmp_path / "data"
        crashed = DetectionService(port=0, data_dir=str(data_dir), checkpoint_every=3).start()
        client = ServiceClient(crashed.url)
        acked = _drive(client, updates=7)  # 2 automatic checkpoints + 1 WAL-only update
        assert crashed.persistence.checkpoints >= 2

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            summary = recovered.persistence.recovered
            assert summary["checkpoint"] is not None
            c2 = ServiceClient(recovered.url)
            sid = acked["session"]["session"]
            assert c2.session_state(sid) == acked["session"]
            assert c2.graph_info("areas") == acked["graph"]
            assert c2.session_deltas(sid, since=1) == acked["deltas"]

    def test_forced_checkpoint_truncates_wal_and_survives(self, tmp_path):
        data_dir = tmp_path / "data"
        service = DetectionService(port=0, data_dir=str(data_dir)).start()
        client = ServiceClient(service.url)
        acked = _drive(client, updates=4)
        outcome = client.checkpoint()
        assert outcome["graphs"] == 1
        # the WAL prefix is gone; only post-checkpoint records remain
        assert list(service.persistence.wal.records()) == []
        health = client.health()
        assert health["persistence"]["checkpoints"] == 1

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            assert recovered.persistence.recovered["replayed"] == 0
            c2 = ServiceClient(recovered.url)
            assert c2.session_state(acked["session"]["session"]) == acked["session"]

    def test_torn_wal_tail_recovers_to_last_acknowledged_state(self, tmp_path):
        data_dir = tmp_path / "data"
        crashed = DetectionService(port=0, data_dir=str(data_dir)).start()
        acked = _drive(ServiceClient(crashed.url), updates=3)
        # simulate a crash mid-append: a partial, never-acknowledged record
        with open(data_dir / "wal.log", "ab") as handle:
            handle.write(b'00000000 {"lsn":99999,"type":"update","graph":"areas"')

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            client = ServiceClient(recovered.url)
            assert client.graph_info("areas") == acked["graph"]
            assert client.session_state(acked["session"]["session"]) == acked["session"]

    def test_crash_between_manifest_swing_and_wal_truncation(self, tmp_path):
        """The manifest rename and the WAL truncation are not atomic together.

        A kill -9 in between leaves the full pre-checkpoint WAL on disk
        while the manifest already points at the new checkpoint; recovery
        must skip the stale prefix and still replay (not discard) every
        record acknowledged after the cut.
        """
        data_dir = tmp_path / "data"
        service = DetectionService(port=0, data_dir=str(data_dir)).start()
        client = ServiceClient(service.url)
        sid = _drive(client, updates=4)["session"]["session"]
        pre_truncation = (data_dir / "wal.log").read_bytes()
        client.checkpoint()
        client.post_update("areas", _update(4))  # acked strictly after the cut
        acked = {
            "graph": client.graph_info("areas"),
            "session": client.session_state(sid),
            "deltas": client.session_deltas(sid, since=1),
        }
        service.stop()
        # undo the truncation: the WAL looks exactly as if the crash hit
        # after the manifest rename but before truncate_through rewrote it
        post_truncation = (data_dir / "wal.log").read_bytes()
        (data_dir / "wal.log").write_bytes(pre_truncation + post_truncation)

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            # exactly the post-cut records (the update + its session delta)
            # replay; the stale prefix is skipped, not re-applied
            assert recovered.persistence.recovered["replayed"] == 2
            c2 = ServiceClient(recovered.url)
            state = {
                "graph": c2.graph_info("areas"),
                "session": c2.session_state(sid),
                "deltas": c2.session_deltas(sid, since=1),
            }
            assert state == acked

    def test_registrations_survive_without_any_update(self, tmp_path):
        data_dir = tmp_path / "data"
        service = DetectionService(port=0, data_dir=str(data_dir)).start()
        client = ServiceClient(service.url)
        client.register_graph("areas", multi_area_graph())
        client.register_rules("mine", RuleSet([phi2()], name="mine"))
        service.stop()

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            c2 = ServiceClient(recovered.url)
            assert [g["name"] for g in c2.list_graphs()] == ["areas"]
            assert {c["name"] for c in c2.list_rules()} == {"mine"}
            # detection against the recovered graph works end to end
            reply = c2.detect("areas", catalog="mine")
            assert len(reply) == 3

    def test_closed_sessions_stay_closed_after_recovery(self, tmp_path):
        data_dir = tmp_path / "data"
        service = DetectionService(port=0, data_dir=str(data_dir)).start()
        client = ServiceClient(service.url)
        client.register_graph("areas", multi_area_graph())
        client.register_rules("mine", example_rules())
        sid = client.create_session("areas", catalog="mine")["session"]
        client.close_session(sid)

        recovered = DetectionService(port=0, data_dir=str(data_dir))
        with recovered:
            assert recovered.manager.session_count() == 0
            # new sessions never reuse a recovered (even closed) session id
            c2 = ServiceClient(recovered.url)
            new_sid = c2.create_session("areas", catalog="mine")["session"]
            assert new_sid != sid

    def test_retention_window_and_squashed_deltas_round_trip(self, tmp_path):
        data_dir = tmp_path / "data"
        crashed = DetectionService(
            port=0, data_dir=str(data_dir), retain_versions=2, checkpoint_every=4
        ).start()
        client = ServiceClient(crashed.url)
        client.register_graph("areas", multi_area_graph())
        client.register_rules("mine", example_rules())
        sid = client.create_session("areas", catalog="mine")["session"]
        for i in range(6):
            client.post_update("areas", _update(i))
        acked_session = client.session_state(sid)
        assert acked_session.get("compacted_through"), "precondition: compaction ran"

        recovered = DetectionService(port=0, data_dir=str(data_dir), retain_versions=2)
        with recovered:
            c2 = ServiceClient(recovered.url)
            assert c2.session_state(sid) == acked_session
            registered = recovered.registry.get("areas")
            assert registered.retained_versions() == [
                registered.version - 1,
                registered.version,
            ]


# ----------------------------------------------------------- data-dir lock


class TestDataDirectoryLock:
    def test_second_process_is_locked_out(self, tmp_path):
        held = DataDirectory(tmp_path / "data")
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
        probe = (
            "import sys\n"
            "from repro.errors import ReproError\n"
            "from repro.storage.checkpoint import DataDirectory\n"
            "try:\n"
            "    DataDirectory(sys.argv[1])\n"
            "except ReproError as exc:\n"
            "    print('LOCKED:', exc)\n"
            "    sys.exit(0)\n"
            "sys.exit(1)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe, str(tmp_path / "data")],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout.startswith("LOCKED:")
        held.release()

    def test_released_lock_can_be_retaken_by_another_process(self, tmp_path):
        first = DataDirectory(tmp_path / "data")
        first.release()
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
        probe = (
            "import sys\n"
            "from repro.storage.checkpoint import DataDirectory\n"
            "DataDirectory(sys.argv[1]).release()\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe, str(tmp_path / "data")],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_same_process_reopen_is_allowed(self, tmp_path):
        # the simulated-crash tests above abandon a service object and boot
        # a fresh one on the same directory within one process; POSIX record
        # locks are per-process, so that must keep working
        first = DataDirectory(tmp_path / "data")
        second = DataDirectory(tmp_path / "data")
        second.release()
        first.release()


# ----------------------------------------------------------- segment cache


class TestSegmentCache:
    def test_directory_for_is_stable_per_key(self, tmp_path):
        cache = SegmentCache(DataDirectory(tmp_path / "data"))
        first = cache.directory_for(("token", 10, 20))
        assert first == cache.directory_for(("token", 10, 20))
        assert first != cache.directory_for(("token", 10, 21))
        assert Path(first).is_dir()
        cache.close()
        assert not Path(first).exists()

    def test_stale_run_directories_are_pruned_at_boot(self, tmp_path):
        data = DataDirectory(tmp_path / "data")
        stale = data.segments_root / "run-99999"
        stale.mkdir(parents=True)
        (stale / "leftover.json").write_text("{}")
        cache = SegmentCache(data)
        assert not stale.exists()
        cache.close()

    def test_sharded_store_adopts_cached_spool(self, tmp_path):
        from repro.graph.sharded import ShardedStore, clear_spool_cache

        graph = multi_area_graph(4)
        directory = tmp_path / "segment"
        first = ShardedStore.build(graph, num_shards=2, halo_hops=1)
        manifest = first.spool(directory)
        mtimes = {p.name: p.stat().st_mtime_ns for p in directory.iterdir()}

        clear_spool_cache()
        second = ShardedStore.build(graph, num_shards=2, halo_hops=1)
        assert second.spool(directory) == manifest
        # adoption must not have re-serialized a single byte
        assert {p.name: p.stat().st_mtime_ns for p in directory.iterdir()} == mtimes
        # and the adopted store still loads every shard correctly
        reloaded = ShardedStore.load(manifest)
        assert reloaded.num_shards == 2
        assert sum(reloaded.shard(i).node_count() for i in range(2)) >= graph.node_count()

    def test_mismatched_manifest_is_respooled(self, tmp_path):
        from repro.graph.sharded import ShardedStore

        graph = multi_area_graph(4)
        directory = tmp_path / "segment"
        ShardedStore.build(graph, num_shards=2, halo_hops=1).spool(directory)
        different = ShardedStore.build(graph, num_shards=2, halo_hops=2)
        manifest = different.spool(directory)
        with open(manifest, "r", encoding="utf-8") as handle:
            assert json.load(handle)["halo_hops"] == 2


# --------------------------------------------------------- kill -9 survival


class TestServeKillRecover:
    """The scripted contract: SIGKILL the server, restart, state is intact."""

    def _serve(self, data_dir: Path, extra: list[str] | None = None) -> subprocess.Popen:
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--data-dir",
                str(data_dir),
                *(extra or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )

    def _ready(self, proc: subprocess.Popen) -> ServiceClient:
        ready = proc.stdout.readline().strip()
        assert ready.startswith("repro-detect: serving on http://"), ready
        return ServiceClient(ready.split()[-1], timeout=60)

    def test_sigkill_mid_stream_and_recover(self, tmp_path):
        data_dir = tmp_path / "data"
        rules_path = tmp_path / "rules.json"
        example_rules().save(rules_path)
        graph_path = tmp_path / "areas.json"
        save_graph(multi_area_graph(), graph_path)

        proc = self._serve(data_dir, ["--catalog", f"mine={rules_path}"])
        try:
            client = self._ready(proc)
            client.register_graph("areas", multi_area_graph())
            sid = client.create_session("areas", catalog="mine")["session"]
            for i in range(5):
                client.post_update("areas", _update(i))
            acked_graph = client.graph_info("areas")
            acked_session = client.session_state(sid)
            acked_deltas = client.session_deltas(sid, since=1)
        finally:
            proc.kill()  # SIGKILL: no atexit, no flush, no goodbye
            proc.wait(timeout=30)

        proc = self._serve(data_dir, ["--catalog", f"mine={rules_path}"])
        try:
            client = self._ready(proc)
            assert client.graph_info("areas") == acked_graph
            assert client.session_state(sid) == acked_session
            assert client.session_deltas(sid, since=1) == acked_deltas
            # and the recovered server still detects + accepts updates
            reply = client.post_update("areas", _update(5))
            assert reply["version"] == acked_graph["version"] + 1
            assert reply["sessions_advanced"] == 1
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0

    def test_cli_registrations_defer_to_recovered_state(self, tmp_path):
        """--graph/--catalog flags must not 409 a boot from a warm data dir."""
        data_dir = tmp_path / "data"
        graph_path = tmp_path / "areas.json"
        save_graph(multi_area_graph(2), graph_path)

        proc = self._serve(data_dir, ["--graph", f"areas={graph_path}"])
        try:
            client = self._ready(proc)
            client.post_update("areas", _update(0))
            acked = client.graph_info("areas")
        finally:
            proc.kill()
            proc.wait(timeout=30)

        # same flags again: the recovered (updated) graph wins over the file
        proc = self._serve(data_dir, ["--graph", f"areas={graph_path}"])
        try:
            client = self._ready(proc)
            assert client.graph_info("areas") == acked
            assert acked["version"] == 2
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
