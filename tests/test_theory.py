"""Tests for the executable hardness reductions (GSSP, 3-colourability, Diophantine)."""

from __future__ import annotations

import pytest

from repro.core.validation import find_violations, graph_satisfies
from repro.detect import inc_dect
from repro.errors import SatisfiabilityError
from repro.graph.graph import Graph
from repro.theory.coloring import ColoringInstance, coloring_to_incremental_instance, is_three_colorable
from repro.theory.gssp import GSSPInstance, gssp_holds, gssp_to_ngds, gssp_witness_graph
from repro.theory.hilbert import DiophantineEquation, diophantine_to_ngd, has_small_solution


class TestGSSP:
    def test_brute_force_positive(self):
        # choose v1 = (1,) so that 5 + {0, 3} never equals 4
        instance = GSSPInstance(u1=(5,), u2=(3,), target=4)
        assert gssp_holds(instance)

    def test_brute_force_negative(self):
        # for every v1 some v2 hits the target: u1=(1,), u2=(1,), target can always be reached?
        # v1=0: v2=1 gives 1 = 1; v1=1: v2=0 gives 1 = 1 → no winning v1
        instance = GSSPInstance(u1=(1,), u2=(1,), target=1)
        assert not gssp_holds(instance)

    def test_encoding_produces_three_rules(self):
        rules = gssp_to_ngds(GSSPInstance(u1=(5,), u2=(3,), target=4))
        assert len(rules) == 3
        assert rules.is_linear()

    def test_witness_graph_satisfies_encoding_for_yes_instance(self):
        instance = GSSPInstance(u1=(5,), u2=(3,), target=4)
        rules = gssp_to_ngds(instance)
        witness = gssp_witness_graph(instance, v1=(1,))
        assert graph_satisfies(witness, rules)

    def test_every_choice_violates_encoding_for_no_instance(self):
        instance = GSSPInstance(u1=(1,), u2=(1,), target=1)
        rules = gssp_to_ngds(instance)
        for choice in ((0,), (1,)):
            witness = gssp_witness_graph(instance, v1=choice)
            assert not graph_satisfies(witness, rules)

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            GSSPInstance(u1=(), u2=(), target=0)


class TestColoringReduction:
    def test_triangle_is_three_colorable(self):
        instance = ColoringInstance(3, ((0, 1), (1, 2), (0, 2)))
        assert is_three_colorable(instance)

    def test_k4_is_not_three_colorable(self):
        edges = tuple((i, j) for i in range(4) for j in range(i + 1, 4))
        assert not is_three_colorable(ColoringInstance(4, edges))

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            ColoringInstance(2, ((0, 5),))

    @pytest.mark.parametrize(
        "instance",
        [
            ColoringInstance(3, ((0, 1), (1, 2), (0, 2))),  # triangle: colourable
            ColoringInstance(4, tuple((i, j) for i in range(4) for j in range(i + 1, 4))),  # K4: not
            ColoringInstance(4, ((0, 1), (1, 2), (2, 3), (3, 0))),  # 4-cycle: colourable
        ],
    )
    def test_incremental_detection_agrees_with_colorability(self, instance):
        graph, rules, delta = coloring_to_incremental_instance(instance)
        result = inc_dect(graph, rules, delta)
        assert (not result.delta.is_empty()) == is_three_colorable(instance)

    def test_constant_size_artifacts(self):
        graph, rules, delta = coloring_to_incremental_instance(ColoringInstance(3, ((0, 1),)))
        assert graph.node_count() == 3
        assert len(delta) == 6
        assert len(rules) == 1


class TestDiophantine:
    def test_evaluate(self):
        # x^2 - 4 = 0
        equation = DiophantineEquation(1, (((1), (2,)), ((-4), (0,))))
        assert equation.evaluate((2,)) == 0
        assert equation.evaluate((3,)) == 5
        assert equation.degree() == 2

    def test_has_small_solution(self):
        solvable = DiophantineEquation(1, ((1, (2,)), (-4, (0,))))
        unsolvable = DiophantineEquation(1, ((1, (2,)), (-3, (0,))))  # x² = 3
        assert has_small_solution(solvable)
        assert not has_small_solution(unsolvable)

    def test_encoding_is_nonlinear_and_validates(self):
        equation = DiophantineEquation(1, ((1, (2,)), (-4, (0,))))  # x² = 4
        rule = diophantine_to_ngd(equation)
        assert not rule.is_linear()
        graph = Graph()
        graph.add_node("x0", "var", {"val": 2})
        assert graph_satisfies(graph, [rule])
        graph.set_attribute("x0", "val", 3)
        assert len(find_violations(graph, [rule])) == 1

    def test_satisfiability_checker_refuses_nonlinear_encoding(self):
        from repro.core.ngd import RuleSet
        from repro.core.satisfiability import is_satisfiable

        rule = diophantine_to_ngd(DiophantineEquation(1, ((1, (2,)), (-4, (0,)))))
        with pytest.raises(SatisfiabilityError):
            is_satisfiable(RuleSet([rule]))

    def test_malformed_equation_rejected(self):
        with pytest.raises(ValueError):
            DiophantineEquation(2, ((1, (1,)),))
        with pytest.raises(ValueError):
            DiophantineEquation(1, ((1, (-1,)),))
