"""End-to-end integration tests crossing module boundaries.

Each test exercises a realistic pipeline: build or load a graph, mine or
declare rules, detect violations (batch / incremental / parallel), and check
the pieces agree with each other.
"""

from __future__ import annotations

import pytest

from repro.core.implication import minimal_cover
from repro.core.ngd import NGD, RuleSet
from repro.core.satisfiability import is_satisfiable
from repro.core.validation import find_violations
from repro.core.violations import ViolationDelta
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_graphs
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import BalancingPolicy, dect, inc_dect, p_dect, pinc_dect
from repro.discovery import DiscoveryConfig, discover_ngds
from repro.graph.io import load_graph, load_update, save_graph, save_update
from repro.graph.partition import bfs_edge_cut
from repro.graph.updates import UpdateGenerator, apply_update


@pytest.fixture(scope="module")
def pipeline_graph():
    config = KBConfig(
        name="pipeline",
        num_entities=160,
        num_entity_types=5,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=1.5,
        error_rate=0.08,
        seed=42,
        hub_link_fraction=0.3,
        num_hubs=2,
    )
    return knowledge_graph(config)


class TestFullPipeline:
    def test_batch_incremental_parallel_agree(self, pipeline_graph):
        rules = benchmark_rules(pipeline_graph, count=12, max_diameter=4, seed=3)
        delta = UpdateGenerator(seed=99).generate(pipeline_graph, 100, insert_ratio=0.5)
        updated = apply_update(pipeline_graph, delta)

        batch_before = dect(pipeline_graph, rules)
        batch_after = dect(updated, rules)
        expected_delta = ViolationDelta.from_sets(batch_before.violations, batch_after.violations)

        incremental = inc_dect(pipeline_graph, rules, delta, graph_after=updated)
        parallel = pinc_dect(pipeline_graph, rules, delta, processors=6, graph_after=updated)
        parallel_batch = p_dect(updated, rules, processors=6)

        assert incremental.delta == expected_delta
        assert parallel.delta == expected_delta
        assert parallel_batch.violations == batch_after.violations
        # applying the delta to the old violation set reconstructs the new one
        patched = batch_before.violations.apply_delta(incremental.delta)
        assert patched == batch_after.violations

    def test_discovered_rules_flow_into_detection(self, pipeline_graph):
        mined = discover_ngds(
            pipeline_graph,
            DiscoveryConfig(max_pattern_edges=2, max_rules=8, min_support=5, min_confidence=0.9, seed=2),
        )
        assert len(mined) > 0
        assert is_satisfiable(RuleSet([mined[0]]))
        result = dect(pipeline_graph, mined)
        assert result.violations == find_violations(pipeline_graph, mined)

    def test_minimal_cover_preserves_violations(self, pipeline_graph):
        rules = benchmark_rules(pipeline_graph, count=8, max_diameter=2, seed=5)
        # duplicate rule names differ but several templates repeat → cover should not grow
        cover = minimal_cover(rules)
        assert len(cover) <= len(rules)
        assert find_violations(pipeline_graph, cover).nodes_involved() <= find_violations(
            pipeline_graph, rules
        ).nodes_involved()

    def test_round_trip_through_files(self, pipeline_graph, tmp_path):
        rules = benchmark_rules(pipeline_graph, count=6, max_diameter=2, seed=7)
        delta = UpdateGenerator(seed=1).generate(pipeline_graph, 40)
        graph_path, update_path = tmp_path / "g.json", tmp_path / "d.json"
        save_graph(pipeline_graph, graph_path)
        save_update(delta, update_path)
        reloaded_graph = load_graph(graph_path)
        reloaded_delta = load_update(update_path)
        assert inc_dect(reloaded_graph, rules, reloaded_delta).delta == inc_dect(
            pipeline_graph, rules, delta
        ).delta

    def test_partitioned_local_detection_is_a_subset(self, pipeline_graph):
        """Fragment-local detection finds a subset of the global violations (the rest need crossing edges)."""
        rules = benchmark_rules(pipeline_graph, count=6, max_diameter=2, seed=11)
        fragmentation = bfs_edge_cut(pipeline_graph, 4)
        global_violations = find_violations(pipeline_graph, rules)
        local_union = set()
        for index in range(fragmentation.num_fragments):
            local = find_violations(fragmentation.local_subgraph(index), rules)
            local_union |= set(local.as_set())
        assert local_union <= set(global_violations.as_set())

    def test_figure1_graphs_full_workflow(self):
        rules = example_rules()
        for name, graph in figure1_graphs().items():
            result = dect(graph, rules)
            assert result.violation_count() == 1, name

    def test_balancing_variants_agree_under_skewed_workload(self, pipeline_graph):
        rules = benchmark_rules(pipeline_graph, count=10, max_diameter=4, seed=13)
        delta = UpdateGenerator(seed=77).generate(pipeline_graph, 120, insert_ratio=0.6)
        reference = inc_dect(pipeline_graph, rules, delta)
        for policy in (
            BalancingPolicy.hybrid(),
            BalancingPolicy.no_splitting(),
            BalancingPolicy.no_rebalancing(),
            BalancingPolicy.none(),
        ):
            result = pinc_dect(pipeline_graph, rules, delta, processors=5, policy=policy)
            assert result.delta == reference.delta
