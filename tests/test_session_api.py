"""Tests for the unified ``Detector`` session API: engines, streaming, sinks, budgets."""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import example_rules, phi2
from repro.core.validation import find_violations
from repro.core.violations import ViolationSet
from repro.datasets.figure1 import figure1_g2, figure1_graphs
from repro.detect import (
    CallbackSink,
    CollectingSink,
    DetectionOptions,
    Detector,
    dect,
    inc_dect,
    p_dect,
    pinc_dect,
)
from repro.errors import SessionError
from repro.graph.graph import Graph
from repro.graph.updates import BatchUpdate


def _many_violations_graph(copies: int = 6) -> Graph:
    """A graph with ``copies`` independent φ2 violations (wrong population totals)."""
    graph = Graph("many-vio")
    for index in range(copies):
        area = f"area{index}"
        graph.add_node(area, "area")
        graph.add_node(f"{area}/f", "integer", {"val": 100 + index})
        graph.add_node(f"{area}/m", "integer", {"val": 200 + index})
        graph.add_node(f"{area}/t", "integer", {"val": 999_000 + index})  # wrong total
        graph.add_edge(area, f"{area}/f", "femalePopulation")
        graph.add_edge(area, f"{area}/m", "malePopulation")
        graph.add_edge(area, f"{area}/t", "populationTotal")
    return graph


class TestEngines:
    def test_unknown_engine_rejected(self):
        with pytest.raises(SessionError):
            Detector(example_rules(), engine="quantum")

    def test_unknown_store_rejected(self):
        with pytest.raises(SessionError):
            Detector(example_rules(), store="csr-from-the-future")

    def test_bad_processors_rejected(self):
        with pytest.raises(SessionError):
            Detector(example_rules(), processors=0)

    def test_incremental_engine_refuses_full_run(self):
        detector = Detector(example_rules(), engine="incremental")
        with pytest.raises(SessionError):
            detector.run(figure1_g2())

    def test_auto_engine_selects_parallel_with_processors(self):
        graph = figure1_g2()
        result = Detector(example_rules(), processors=4).run(graph)
        assert result.algorithm == "PDect"
        assert result.processors == 4
        result = Detector(example_rules()).run(graph)
        assert result.algorithm == "Dect"

    def test_rules_accepts_plain_list(self):
        result = Detector([phi2()]).run(figure1_g2())
        assert result.violation_count() == 1

    def test_store_conversion(self):
        graph = figure1_g2().with_backend("indexed")
        detector = Detector(example_rules(), store="dict")
        result = detector.run(graph)
        assert result.violation_count() == 1
        # the caller's graph is untouched
        assert graph.store_backend == "indexed"


class TestLegacyShims:
    """The module-level functions must behave exactly like the sessions they wrap."""

    def test_dect_matches_detector_on_figure1(self):
        rules = example_rules()
        for name, graph in figure1_graphs().items():
            legacy = dect(graph, rules)
            session = Detector(rules, engine="batch").run(graph)
            assert legacy.violations == session.violations, name
            assert legacy.cost == session.cost, name
            assert legacy.algorithm == session.algorithm == "Dect"

    def test_p_dect_matches_detector_on_figure1(self):
        rules = example_rules()
        for name, graph in figure1_graphs().items():
            legacy = p_dect(graph, rules, processors=4)
            session = Detector(rules, engine="parallel", processors=4).run(graph)
            assert legacy.violations == session.violations, name
            assert legacy.cost == session.cost, name

    def test_incremental_shims_match_detector(self):
        rules = example_rules()
        graph = figure1_g2()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")

        legacy = inc_dect(graph, rules, delta)
        session = Detector(rules, engine="incremental").run_incremental(graph, delta)
        assert legacy.delta == session.delta
        assert legacy.cost == session.cost

        legacy_p = pinc_dect(graph, rules, delta, processors=4)
        session_p = Detector(rules, engine="parallel", processors=4).run_incremental(graph, delta)
        assert legacy_p.delta == session_p.delta
        assert legacy_p.cost == session_p.cost

    def test_legacy_positional_signatures_still_work(self):
        graph = figure1_g2()
        rules = example_rules()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")
        assert dect(graph, rules, False).violation_count() == 1
        assert inc_dect(graph, rules, delta, True, False, None).total_changes() == 1
        assert p_dect(graph, rules, 4, None, True).violation_count() == 1
        assert pinc_dect(graph, rules, delta, 4, None, True, None).total_changes() == 1


class TestStreaming:
    @pytest.mark.parametrize("backend", ["dict", "indexed"])
    def test_stream_matches_dect_on_both_backends(self, backend):
        rules = example_rules()
        for name, graph in figure1_graphs().items():
            graph = graph.with_backend(backend)
            streamed = ViolationSet(Detector(rules).stream(graph))
            assert streamed == dect(graph, rules).violations, (name, backend)

    def test_stream_sets_last_result(self):
        graph = figure1_g2()
        detector = Detector(example_rules())
        assert detector.last_result is None
        list(detector.stream(graph))
        assert detector.last_result is not None
        assert detector.last_result.violation_count() == 1

    def test_stream_matches_ground_truth_matcher(self):
        graph = _many_violations_graph()
        rules = example_rules()
        streamed = ViolationSet(Detector(rules).stream(graph))
        assert streamed == ViolationSet(find_violations(graph, rules))

    def test_stream_incremental_yields_signed_events(self):
        graph = figure1_g2()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")
        events = list(Detector(example_rules()).stream_incremental(graph, delta))
        assert len(events) == 1
        assert events[0].introduced is False
        assert events[0].violation.rule == "phi2"

    def test_parallel_stream_matches_p_dect(self):
        graph = _many_violations_graph()
        rules = example_rules()
        streamed = ViolationSet(Detector(rules, engine="parallel", processors=4).stream(graph))
        assert streamed == p_dect(graph, rules, processors=4).violations


class TestSinks:
    def test_collecting_sink_observes_batch_run(self):
        sink = CollectingSink()
        result = Detector(example_rules(), sinks=[sink]).run(_many_violations_graph())
        assert sink.violations == result.violations
        assert sink.results == [result]

    def test_callback_sink_sees_stream_order(self):
        seen: list = []
        detector = Detector(example_rules()).add_sink(
            CallbackSink(lambda violation, introduced: seen.append(violation))
        )
        streamed = list(detector.stream(_many_violations_graph()))
        assert seen == streamed

    def test_sink_observes_incremental_directions(self):
        graph = figure1_g2()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")
        sink = CollectingSink()
        result = Detector(example_rules(), sinks=[sink]).run_incremental(graph, delta)
        assert sink.removed == result.removed()
        assert not sink.introduced

    def test_multiple_sinks_fan_out(self):
        first, second = CollectingSink(), CollectingSink()
        Detector(example_rules(), sinks=[first, second]).run(figure1_g2())
        assert first.violations == second.violations
        assert len(first.violations) == 1


class TestBudgets:
    def test_max_violations_stops_early_with_less_cost(self):
        graph = _many_violations_graph(copies=6)
        rules = example_rules()
        full = Detector(rules).run(graph)
        assert full.violation_count() == 6
        assert not full.stopped_early

        capped = Detector(rules, options=DetectionOptions(max_violations=1)).run(graph)
        assert capped.violation_count() == 1
        assert capped.stopped_early
        assert capped.stop_reason == "max_violations"
        assert capped.cost < full.cost
        # the capped finding is a genuine member of the full answer
        assert capped.violations.as_set() <= full.violations.as_set()

    def test_max_violations_stops_stream(self):
        graph = _many_violations_graph(copies=6)
        detector = Detector(example_rules(), options=DetectionOptions(max_violations=2))
        assert len(list(detector.stream(graph))) == 2
        assert detector.last_result.stopped_early

    def test_max_cost_stops_early(self):
        graph = _many_violations_graph(copies=6)
        rules = example_rules()
        full = Detector(rules).run(graph)
        capped = Detector(rules, options=DetectionOptions(max_cost=full.cost / 4)).run(graph)
        assert capped.stopped_early
        assert capped.stop_reason == "max_cost"
        assert capped.cost < full.cost

    def test_nonpositive_caps_rejected(self):
        from repro.detect import DetectionBudget

        with pytest.raises(SessionError):
            DetectionBudget(max_violations=0)
        with pytest.raises(SessionError):
            DetectionBudget(max_cost=0.0)
        with pytest.raises(SessionError):
            Detector(example_rules(), options=DetectionOptions(max_violations=-1)).run(
                figure1_g2()
            )

    def test_budget_applies_to_parallel_engine(self):
        graph = _many_violations_graph(copies=6)
        options = DetectionOptions(max_violations=1)
        capped = Detector(example_rules(), engine="parallel", processors=4, options=options).run(graph)
        assert capped.violation_count() == 1
        assert capped.stopped_early

    def test_budget_applies_to_incremental_engine(self):
        graph = _many_violations_graph(copies=6)
        delta = BatchUpdate()
        for index in range(6):
            delta.delete(f"area{index}", f"area{index}/t", "populationTotal")
        options = DetectionOptions(max_violations=1)
        capped = Detector(example_rules(), options=options).run_incremental(graph, delta)
        assert capped.total_changes() == 1
        assert capped.stopped_early
        full = Detector(example_rules()).run_incremental(graph, delta)
        assert full.total_changes() == 6
        assert capped.cost < full.cost


class TestBatchDiffMode:
    def test_engine_batch_run_incremental_matches_inc_dect(self):
        graph = figure1_g2()
        rules = example_rules()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")
        oracle = Detector(rules, engine="batch").run_incremental(graph, delta)
        incremental = inc_dect(graph, rules, delta)
        assert oracle.delta == incremental.delta
        assert oracle.algorithm == "BatchDiff"

    def test_batch_diff_streams_after_completion(self):
        graph = _many_violations_graph(copies=3)
        delta = BatchUpdate().delete("area0", "area0/t", "populationTotal")
        events = list(Detector(example_rules(), engine="batch").stream_incremental(graph, delta))
        assert len(events) == 1
        assert events[0].introduced is False

    def test_batch_diff_rejects_budgets(self):
        # a capped batch run would make the diff unsound — refuse loudly
        graph = figure1_g2()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")
        detector = Detector(
            example_rules(), engine="batch", options=DetectionOptions(max_violations=1)
        )
        assert detector.run(graph).stopped_early  # full runs still honour budgets
        with pytest.raises(SessionError):
            detector.run_incremental(graph, delta)
