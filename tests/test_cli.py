"""Tests for the ``repro-detect`` subcommand CLI: exit codes, JSON schema, rule files."""

from __future__ import annotations

import json

import pytest

from repro.cli import format_result, main, result_to_dict
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g2, figure1_g4
from repro.detect import Detector, dect, inc_dect
from repro.graph.graph import Graph
from repro.graph.io import save_graph, save_update
from repro.graph.updates import BatchUpdate


@pytest.fixture
def g2_path(tmp_path):
    path = tmp_path / "g2.json"
    save_graph(figure1_g2(), path)
    return str(path)


@pytest.fixture
def clean_graph_path(tmp_path):
    graph = Graph("clean")
    graph.add_node("a", "area")
    path = tmp_path / "clean.json"
    save_graph(graph, path)
    return str(path)


@pytest.fixture
def delta_path(tmp_path):
    path = tmp_path / "delta.json"
    save_update(BatchUpdate().delete("Bhonpur", "total", "populationTotal"), path)
    return str(path)


class TestExitCodes:
    def test_run_violations_found_exits_1(self, g2_path):
        assert main(["run", g2_path]) == 1

    def test_run_clean_graph_exits_0(self, clean_graph_path):
        assert main(["run", clean_graph_path]) == 0

    def test_incremental_changes_exit_1(self, g2_path, delta_path):
        assert main(["incremental", g2_path, "--update", delta_path]) == 1

    def test_incremental_no_changes_exits_0(self, tmp_path):
        graph = Graph("clean2")
        graph.add_node("a", "area")
        graph.add_node("b", "area")
        graph_path = tmp_path / "clean2.json"
        save_graph(graph, graph_path)
        update_path = tmp_path / "noop.json"
        # an inserted edge no rule pattern mentions: ΔVio is empty
        save_update(BatchUpdate().insert("a", "b", "unrelated"), update_path)
        assert main(["incremental", str(graph_path), "--update", str(update_path)]) == 0

    def test_missing_graph_file_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_missing_subcommand_exits_2(self, capsys):
        assert main([]) == 2

    def test_malformed_rules_file_exits_2(self, g2_path, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not rules", encoding="utf-8")
        assert main(["run", g2_path, "--rules-file", str(bad)]) == 2

    def test_structurally_bad_rules_file_exits_2(self, g2_path, tmp_path, capsys):
        # valid JSON, wrong shapes: a node entry missing its label
        bad = tmp_path / "bad_shape.json"
        bad.write_text(
            json.dumps({"rules": [{"name": "r", "pattern": {"name": "Q", "nodes": [["x"]]}}]}),
            encoding="utf-8",
        )
        assert main(["run", g2_path, "--rules-file", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "repro-detect" in capsys.readouterr().out

    def test_truncated_search_without_findings_exits_3(self, g2_path, capsys):
        # the graph has a violation, but a tiny cost budget stops before it:
        # that must not read as "verified clean"
        assert main(["run", g2_path, "--max-cost", "1", "--format", "json"]) == 3
        document = json.loads(capsys.readouterr().out)
        assert document["stopped_early"] is True
        assert document["violation_count"] == 0

    def test_nonpositive_budget_exits_2(self, g2_path, capsys):
        assert main(["run", g2_path, "--max-violations", "0"]) == 2
        assert "max_violations" in capsys.readouterr().err


class TestJsonFormat:
    def test_run_json_schema(self, g2_path, capsys):
        assert main(["run", g2_path, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["algorithm"] == "Dect"
        assert document["violation_count"] == 1
        assert document["stopped_early"] is False
        assert document["processors"] == 1
        (entry,) = document["violations"]
        assert entry["rule"] == "phi2"
        assert entry["assignment"]["x"] == "Bhonpur"
        assert entry["variables"] == ["x", "y", "z", "w"]
        assert len(entry["nodes"]) == len(entry["variables"])

    def test_incremental_json_schema(self, g2_path, delta_path, capsys):
        assert main(["incremental", g2_path, "--update", delta_path, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["algorithm"] == "IncDect"
        assert document["total_changes"] == 1
        assert document["introduced"] == []
        assert document["removed"][0]["rule"] == "phi2"

    def test_format_result_text_and_json_agree(self):
        result = dect(figure1_g4(), example_rules())
        text = format_result(result, "text")
        document = json.loads(format_result(result, "json"))
        assert f"{result.violation_count()} violations" in text
        assert document["violation_count"] == result.violation_count()
        assert document == result_to_dict(result)

    def test_format_result_incremental_text(self):
        graph = figure1_g2()
        delta = BatchUpdate().delete("Bhonpur", "total", "populationTotal")
        result = inc_dect(graph, example_rules(), delta)
        text = format_result(result, "text")
        assert "+0 / -1 violations" in text
        assert "- [phi2]" in text


class TestRulesSubcommand:
    def test_rules_list_text(self, capsys):
        assert main(["rules", "list"]) == 0
        output = capsys.readouterr().out
        assert "example-rules" in output
        for name in ("phi1", "phi2", "phi3", "phi4"):
            assert name in output

    def test_rules_list_json(self, capsys):
        assert main(["rules", "list", "--rules", "effectiveness", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [rule["name"] for rule in document["rules"]] == ["NGD1", "NGD2", "NGD3"]
        assert all("diameter" in rule for rule in document["rules"])

    def test_rules_export_round_trips_through_run(self, g2_path, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        assert main(["rules", "export", "-o", str(rules_path)]) == 0
        # exported file is valid rule-set JSON
        from repro.core.ngd import RuleSet

        exported = RuleSet.load(rules_path)
        assert exported.rules() == example_rules().rules()

        # --rules-file produces the same answer as the built-in rules
        assert main(["run", g2_path, "--format", "json"]) == 1
        builtin_doc = json.loads(capsys.readouterr().out)
        assert main(["run", g2_path, "--rules-file", str(rules_path), "--format", "json"]) == 1
        file_doc = json.loads(capsys.readouterr().out)
        assert file_doc == builtin_doc

    def test_rules_export_to_stdout(self, capsys):
        assert main(["rules", "export", "--rules", "effectiveness"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["name"] == "effectiveness-rules"


class TestDetectionFlags:
    def test_max_violations_caps_output(self, tmp_path, capsys):
        graph = Graph("two-vio")
        for index in range(2):
            area = f"a{index}"
            graph.add_node(area, "area")
            graph.add_node(f"{area}f", "integer", {"val": 1})
            graph.add_node(f"{area}m", "integer", {"val": 2})
            graph.add_node(f"{area}t", "integer", {"val": 999})
            graph.add_edge(area, f"{area}f", "femalePopulation")
            graph.add_edge(area, f"{area}m", "malePopulation")
            graph.add_edge(area, f"{area}t", "populationTotal")
        path = tmp_path / "two.json"
        save_graph(graph, path)
        assert main(["run", str(path), "--max-violations", "1", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["violation_count"] == 1
        assert document["stopped_early"] is True
        assert document["stop_reason"] == "max_violations"

    def test_parallel_engine_via_processors(self, g2_path, capsys):
        assert main(["run", g2_path, "--processors", "4"]) == 1
        assert "PDect" in capsys.readouterr().out

    def test_explicit_batch_engine_overrides_processors(self, g2_path, capsys):
        assert main(["run", g2_path, "--engine", "batch", "--processors", "4"]) == 1
        assert "Dect: 1 violations" in capsys.readouterr().out

    def test_store_flag(self, g2_path, capsys):
        for store in ("dict", "indexed"):
            assert main(["run", g2_path, "--store", store, "--format", "json"]) == 1
            assert json.loads(capsys.readouterr().out)["violation_count"] == 1

    def test_cli_matches_session_api(self, g2_path, capsys):
        assert main(["run", g2_path, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        result = Detector(example_rules()).run(figure1_g2())
        assert document["cost"] == result.cost
        assert document["violation_count"] == result.violation_count()


class TestRulesDiscover:
    """`repro-detect rules discover` mines NGDs straight into the rule-file format."""

    @pytest.fixture
    def minable_graph_path(self, tmp_path):
        from repro.datasets.synthetic import synthetic_graph

        path = tmp_path / "minable.json"
        save_graph(synthetic_graph(num_nodes=400, num_edges=800, seed=3, name="minable"), path)
        return str(path)

    def test_discover_writes_a_loadable_rule_file(self, minable_graph_path, tmp_path, capsys):
        from repro.core.ngd import RuleSet
        from repro.discovery import DiscoveryConfig, discover_ngds
        from repro.graph.io import load_graph

        out = tmp_path / "mined.json"
        code = main(
            [
                "rules",
                "discover",
                minable_graph_path,
                "-o",
                str(out),
                "--max-rules",
                "6",
                "--min-support",
                "4",
            ]
        )
        assert code == 0
        assert "discovered" in capsys.readouterr().out
        loaded = RuleSet.load(out)
        assert 0 < len(loaded) <= 6
        # the file round-trips exactly and matches a direct miner run
        assert RuleSet.from_json(loaded.to_json()).rules() == loaded.rules()
        direct = discover_ngds(
            load_graph(minable_graph_path),
            DiscoveryConfig(max_rules=6, min_support=4),
        )
        assert loaded.rules() == direct.rules()
        # mined rules are usable by the detection path
        assert main(["run", minable_graph_path, "--rules-file", str(out)]) in (0, 1)

    def test_discover_to_stdout(self, minable_graph_path, capsys):
        code = main(["rules", "discover", minable_graph_path, "--max-rules", "3", "--min-support", "4"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["rules"]

    def test_discover_without_graph_exits_2(self, capsys):
        assert main(["rules", "discover"]) == 2
        assert "needs a graph file" in capsys.readouterr().err

    def test_list_with_graph_argument_exits_2(self, g2_path, capsys):
        assert main(["rules", "list", g2_path]) == 2
        assert "only valid with 'discover'" in capsys.readouterr().err
