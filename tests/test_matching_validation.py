"""Unit tests for homomorphism matching, candidate pruning, and batch validation."""

from __future__ import annotations

import pytest

from repro.core.ngd import NGD, RuleSet
from repro.core.validation import find_violations, graph_satisfies, satisfies_rule, violations_of_rule
from repro.expr.parser import parse_literal_set
from repro.graph.generators import chain_graph, star_graph
from repro.graph.graph import WILDCARD, Graph
from repro.graph.pattern import Pattern
from repro.matching.candidates import MatchStatistics, candidate_nodes, node_satisfies_unary_premise
from repro.matching.incmatch import IncrementalMatcher, find_update_pivots
from repro.matching.matchn import HomomorphismMatcher, assignment_for_match, match_violates_dependency
from repro.graph.updates import BatchUpdate, apply_update


class TestCandidates:
    def test_label_filtering(self, triangle_graph, knows_pattern):
        candidates = candidate_nodes(triangle_graph, knows_pattern, "x")
        assert set(candidates) == {"a"}  # only 'a' has an outgoing "knows" edge

    def test_wildcard_candidates(self, triangle_graph):
        pattern = Pattern.from_edges("p", nodes=[("x", WILDCARD)], edges=[])
        assert len(candidate_nodes(triangle_graph, pattern, "x")) == 3

    def test_unary_premise_pruning(self, triangle_graph, knows_pattern):
        premise = parse_literal_set("x.val > 100")
        candidates = candidate_nodes(triangle_graph, knows_pattern, "x", premise=premise)
        assert candidates == []

    def test_unary_premise_missing_attribute_prunes(self, triangle_graph):
        premise = parse_literal_set("x.population > 0")
        assert not node_satisfies_unary_premise(triangle_graph, "a", "x", premise)

    def test_statistics_accumulate(self, triangle_graph, knows_pattern):
        stats = MatchStatistics()
        candidate_nodes(triangle_graph, knows_pattern, "x", stats=stats)
        assert stats.candidates_examined > 0
        other = MatchStatistics(expansions=2)
        stats.merge(other)
        assert stats.expansions == 2
        assert stats.total_operations() > 2


class TestHomomorphismMatcher:
    def test_single_match(self, triangle_graph, knows_pattern):
        matcher = HomomorphismMatcher(triangle_graph, knows_pattern)
        matches = list(matcher.matches())
        assert matches == [{"x": "a", "y": "b"}]

    def test_homomorphism_allows_node_reuse(self):
        graph = Graph()
        graph.add_node("a", "t")
        graph.add_node("b", "t")
        graph.add_edge("a", "b", "e")
        graph.add_edge("b", "a", "e")
        pattern = Pattern.from_edges(
            "p",
            nodes=[("x", "t"), ("y", "t"), ("z", "t")],
            edges=[("x", "y", "e"), ("y", "z", "e")],
        )
        matches = list(HomomorphismMatcher(graph, pattern).matches())
        # x and z may map to the same data node: a->b->a and b->a->b
        assert {tuple(sorted(m.items())) for m in matches} == {
            (("x", "a"), ("y", "b"), ("z", "a")),
            (("x", "b"), ("y", "a"), ("z", "b")),
        }

    def test_edge_labels_must_match(self, triangle_graph):
        pattern = Pattern.from_edges(
            "p", nodes=[("x", "person"), ("y", "person")], edges=[("x", "y", "likes")]
        )
        assert list(HomomorphismMatcher(triangle_graph, pattern).matches()) == []

    def test_seeded_search(self, triangle_graph):
        pattern = Pattern.from_edges(
            "p", nodes=[("x", "person"), ("y", "city")], edges=[("x", "y", "lives_in")]
        )
        matcher = HomomorphismMatcher(triangle_graph, pattern)
        assert list(matcher.matches(seed={"x": "a"})) == [{"x": "a", "y": "c"}]
        assert list(matcher.matches(seed={"x": "c"})) == []  # label mismatch

    def test_inconsistent_seed_yields_nothing(self, triangle_graph, knows_pattern):
        matcher = HomomorphismMatcher(triangle_graph, knows_pattern)
        assert list(matcher.matches(seed={"x": "b", "y": "a"})) == []

    def test_disconnected_pattern(self, triangle_graph):
        pattern = Pattern.from_edges("p", nodes=[("x", "person"), ("y", "city")], edges=[])
        matches = list(HomomorphismMatcher(triangle_graph, pattern).matches())
        assert len(matches) == 2  # two persons × one city

    def test_wildcard_pattern_matches_all(self, triangle_graph):
        pattern = Pattern.from_edges("p", nodes=[("x", WILDCARD)], edges=[])
        assert len(list(HomomorphismMatcher(triangle_graph, pattern).matches())) == 3

    def test_violations_generator(self, triangle_graph, knows_rule):
        matcher = HomomorphismMatcher(
            triangle_graph, knows_rule.pattern, premise=knows_rule.premise, conclusion=knows_rule.conclusion
        )
        assert list(matcher.violations()) == [{"x": "a", "y": "b"}]

    def test_pruning_equivalence(self, triangle_graph, knows_rule):
        with_pruning = HomomorphismMatcher(
            triangle_graph,
            knows_rule.pattern,
            premise=knows_rule.premise,
            conclusion=knows_rule.conclusion,
            use_literal_pruning=True,
        )
        without_pruning = HomomorphismMatcher(
            triangle_graph,
            knows_rule.pattern,
            premise=knows_rule.premise,
            conclusion=knows_rule.conclusion,
            use_literal_pruning=False,
        )
        assert list(with_pruning.violations()) == list(without_pruning.violations())

    def test_star_pattern_matches(self):
        graph = star_graph(4)
        pattern = Pattern.from_edges(
            "p", nodes=[("h", "hub"), ("l", "leaf")], edges=[("h", "l", "link")]
        )
        assert len(list(HomomorphismMatcher(graph, pattern).matches())) == 4

    def test_assignment_for_match_skips_missing_attributes(self, triangle_graph):
        assignment = assignment_for_match(triangle_graph, {"x": "c"}, frozenset({("x", "age")}))
        assert assignment == {}

    def test_match_violates_dependency(self, triangle_graph, knows_rule):
        assert match_violates_dependency(
            triangle_graph, {"x": "a", "y": "b"}, knows_rule.premise, knows_rule.conclusion
        )


class TestValidation:
    def test_violations_of_rule(self, triangle_graph, knows_rule):
        violations = violations_of_rule(triangle_graph, knows_rule)
        assert len(violations) == 1

    def test_graph_satisfies(self, triangle_graph, knows_pattern):
        satisfied_rule = NGD.from_text(knows_pattern, "", "x.val <= y.val", name="ok")
        assert satisfies_rule(triangle_graph, satisfied_rule)
        assert graph_satisfies(triangle_graph, [satisfied_rule])

    def test_find_violations_unions_rules(self, triangle_graph, knows_rule, knows_pattern):
        other = NGD.from_text(knows_pattern, "", "x.age <= y.age", name="age_order")
        violations = find_violations(triangle_graph, RuleSet([knows_rule, other]))
        # 10 >= 20 fails val_order and 30 <= 25 fails age_order: both rules are violated
        assert violations.rules_violated() == {"val_order", "age_order"}
        assert len(violations) == 2

    def test_empty_rule_set_always_satisfied(self, triangle_graph):
        assert graph_satisfies(triangle_graph, RuleSet([]))

    def test_missing_attribute_in_conclusion_is_violation(self, triangle_graph, knows_pattern):
        rule = NGD.from_text(knows_pattern, "", "x.population > 0", name="needs_population")
        assert len(find_violations(triangle_graph, [rule])) == 1

    def test_missing_attribute_in_premise_is_not_violation(self, triangle_graph, knows_pattern):
        rule = NGD.from_text(knows_pattern, "x.population > 0", "y.val = 999", name="guarded")
        assert graph_satisfies(triangle_graph, [rule])


class TestIncrementalMatching:
    def test_pivots_found_for_matching_labels(self, triangle_graph, knows_rule):
        delta = BatchUpdate().delete("a", "b", "knows")
        updated = apply_update(triangle_graph, delta)
        pivots = find_update_pivots(knows_rule, delta, triangle_graph, updated)
        assert len(pivots) == 1
        assert not pivots[0].from_insertion
        assert pivots[0].seed() == {"x": "a", "y": "b"}

    def test_no_pivot_for_unrelated_label(self, triangle_graph, knows_rule):
        delta = BatchUpdate().delete("a", "c", "lives_in")
        updated = apply_update(triangle_graph, delta)
        assert find_update_pivots(knows_rule, delta, triangle_graph, updated) == []

    def test_insertion_pivot_expands_in_updated_graph(self, triangle_graph, knows_rule):
        delta = BatchUpdate().insert("b", "a", "knows")
        updated = apply_update(triangle_graph, delta)
        pivots = find_update_pivots(knows_rule, delta, triangle_graph, updated)
        matcher = IncrementalMatcher(knows_rule, triangle_graph, updated)
        found = [match for pivot in pivots for match in matcher.violations_for_pivot(pivot)]
        # b knows a with 20 >= 10: satisfied, so no new violation
        assert found == []

    def test_deletion_pivot_reports_removed_violation(self, triangle_graph, knows_rule):
        delta = BatchUpdate().delete("a", "b", "knows")
        updated = apply_update(triangle_graph, delta)
        pivots = find_update_pivots(knows_rule, delta, triangle_graph, updated)
        matcher = IncrementalMatcher(knows_rule, triangle_graph, updated)
        found = [match for pivot in pivots for match in matcher.violations_for_pivot(pivot)]
        assert found == [{"x": "a", "y": "b"}]
