"""Tests for rules-as-data: expression formatting, NGD/RuleSet (de)serialization."""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import effectiveness_rules, example_rules, phi4
from repro.core.ngd import NGD, RuleSet
from repro.datasets.figure1 import figure1_g2
from repro.detect import Detector, dect
from repro.errors import DependencyError, ExpressionError, ParseError
from repro.expr.expressions import const
from repro.expr.format import format_expression, format_literal, format_literal_set
from repro.expr.parser import parse_expression, parse_literal, parse_literal_set
from repro.graph.pattern import Pattern


class TestExpressionFormatting:
    @pytest.mark.parametrize(
        "text",
        [
            "x.val",
            "5",
            "5.5",
            "x.val + 3",
            "(z.val - y.val)",
            "2 * (m1.val - m2.val) + 3 * n1.val",
            "x.val / 4",
            "|x.a - y.b|",
            "-x.val",
            "-(x.val + 1)",
            "||x.val||",
        ],
    )
    def test_parse_format_parse_is_identity(self, text):
        expression = parse_expression(text)
        rendered = format_expression(expression)
        assert parse_expression(rendered) == expression

    @pytest.mark.parametrize(
        "text",
        [
            "x.val = 7",
            "y.val + z.val = w.val",
            "m1.val < m2.val",
            "x.A != 0",
            "z.val - y.val >= 100",
            's.val = "living people"',
        ],
    )
    def test_literal_round_trip(self, text):
        literal = parse_literal(text)
        assert parse_literal(format_literal(literal)) == literal

    def test_literal_set_round_trip_including_empty(self):
        literals = parse_literal_set("s1.val = 1, m1.val - m2.val > 500")
        assert parse_literal_set(format_literal_set(literals)) == literals
        assert format_literal_set(parse_literal_set("")) == ""
        assert parse_literal_set(format_literal_set(parse_literal_set("∅"))) == parse_literal_set("")

    def test_string_constants_with_escapes(self):
        literal = parse_literal('x.name = "he said \\"hi\\" \\\\ done"')
        rendered = format_literal(literal)
        assert parse_literal(rendered) == literal
        assert '\\"hi\\"' in rendered

    def test_unparseable_constant_rejected(self):
        with pytest.raises(ExpressionError):
            format_expression(const(1e-30))


class TestParserStrings:
    def test_string_constant_parses(self):
        literal = parse_literal('z.val != "living people"')
        assert literal.holds_for({("z", "val"): "dead people"})
        assert not literal.holds_for({("z", "val"): "living people"})

    def test_unterminated_string_is_an_error(self):
        with pytest.raises(ParseError):
            parse_literal('x.val = "oops')


class TestPatternSerialization:
    def test_round_trip_preserves_equality_and_order(self):
        for rule in example_rules():
            rebuilt = Pattern.from_dict(rule.pattern.to_dict())
            assert rebuilt == rule.pattern
            assert rebuilt.variables == rule.pattern.variables
            assert rebuilt.edges() == rule.pattern.edges()

    def test_malformed_document_rejected(self):
        with pytest.raises(Exception):
            Pattern.from_dict({"name": "Q"})


class TestRuleSetSerialization:
    def test_example_rules_json_round_trip_exact(self):
        rules = example_rules()
        rebuilt = RuleSet.from_json(rules.to_json())
        assert rebuilt.name == rules.name
        assert len(rebuilt) == len(rules)
        for original, restored in zip(rules, rebuilt):
            assert restored.name == original.name
            assert restored.pattern == original.pattern
            assert restored.premise == original.premise
            assert restored.conclusion == original.conclusion
            assert restored == original

    def test_effectiveness_rules_round_trip(self):
        # NGD1/NGD2 compare against string constants — exercises quoting
        rules = effectiveness_rules()
        rebuilt = RuleSet.from_json(rules.to_json())
        assert [rule.name for rule in rebuilt] == [rule.name for rule in rules]
        assert all(a == b for a, b in zip(rules, rebuilt))

    def test_ngd_dict_round_trip(self):
        rule = phi4(weight_following=2, weight_follower=3, threshold=777)
        assert NGD.from_dict(rule.to_dict()) == rule

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "rules.json"
        rules = example_rules()
        rules.save(path)
        loaded = RuleSet.load(path)
        assert loaded.name == rules.name
        assert loaded.rules() == rules.rules()

    def test_malformed_documents_rejected(self):
        with pytest.raises(DependencyError):
            RuleSet.from_json("{not json")
        with pytest.raises(DependencyError):
            RuleSet.from_dict({"rules": "nope"})
        with pytest.raises(DependencyError):
            NGD.from_dict({"name": "no-pattern"})

    def test_deserialized_rules_detect_identically(self):
        graph = figure1_g2()
        rules = example_rules()
        rebuilt = RuleSet.from_json(rules.to_json())
        assert dect(graph, rebuilt).violations == dect(graph, rules).violations
        assert Detector(rebuilt).run(graph).cost == Detector(rules).run(graph).cost
