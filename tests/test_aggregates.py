"""Tests for the aggregation extension of NGDs (future work of Section 8)."""

from __future__ import annotations

import pytest

from repro.core.aggregates import (
    AggregateLiteral,
    AggregateRule,
    AggregateTerm,
    find_aggregate_violations,
)
from repro.errors import DependencyError
from repro.expr.expressions import const, var
from repro.expr.literals import Comparison, LiteralSet
from repro.expr.parser import parse_literal_set
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern


@pytest.fixture
def region_graph() -> Graph:
    """A region with three districts whose populations should sum to the recorded total."""
    graph = Graph("regions")
    graph.add_node("region", "region", {"totalPop": 600})
    for name, population in (("d1", 100), ("d2", 200), ("d3", 300)):
        graph.add_node(name, "district", {"population": population})
        graph.add_edge("region", name, "hasDistrict")
    graph.add_node("empty_region", "region", {"totalPop": 0})
    return graph


@pytest.fixture
def region_pattern() -> Pattern:
    return Pattern.from_edges("region_pattern", nodes=[("z", "region")])


@pytest.fixture
def sum_rule(region_pattern) -> AggregateRule:
    literal = AggregateLiteral(
        AggregateTerm("sum", "z", "hasDistrict", "population"), Comparison.EQ, var("z", "totalPop")
    )
    return AggregateRule(region_pattern, LiteralSet(), [literal], name="district_sum")


class TestAggregateTerm:
    def test_sum_and_count(self, region_graph):
        term = AggregateTerm("sum", "z", "hasDistrict", "population")
        assert term.evaluate(region_graph, "region") == 600
        count = AggregateTerm("count", "z", "hasDistrict")
        assert count.evaluate(region_graph, "region") == 3
        assert count.evaluate(region_graph, "empty_region") == 0

    def test_min_max_avg(self, region_graph):
        assert AggregateTerm("min", "z", "hasDistrict", "population").evaluate(region_graph, "region") == 100
        assert AggregateTerm("max", "z", "hasDistrict", "population").evaluate(region_graph, "region") == 300
        assert AggregateTerm("avg", "z", "hasDistrict", "population").evaluate(region_graph, "region") == 200

    def test_empty_neighbourhood_sum_is_zero(self, region_graph):
        term = AggregateTerm("sum", "z", "hasDistrict", "population")
        assert term.evaluate(region_graph, "empty_region") == 0

    def test_undefined_aggregate_raises(self, region_graph):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            AggregateTerm("avg", "z", "hasDistrict", "population").evaluate(region_graph, "empty_region")

    def test_unknown_function_rejected(self):
        with pytest.raises(DependencyError):
            AggregateTerm("median", "z", "hasDistrict", "population")


class TestAggregateRule:
    def test_consistent_region_satisfies_sum_rule(self, region_graph, sum_rule):
        violations = find_aggregate_violations(region_graph, sum_rule)
        assert len(violations) == 0

    def test_inconsistent_total_is_caught(self, region_graph, sum_rule):
        region_graph.set_attribute("region", "totalPop", 999)
        violations = find_aggregate_violations(region_graph, sum_rule)
        assert len(violations) == 1
        assert next(iter(violations)).mapping()["z"] == "region"

    def test_premise_guards_the_aggregate(self, region_graph, region_pattern):
        rule = AggregateRule(
            region_pattern,
            parse_literal_set("z.totalPop > 1000"),
            [
                AggregateLiteral(
                    AggregateTerm("count", "z", "hasDistrict"), Comparison.GE, const(1)
                )
            ],
            name="big_regions_have_districts",
        )
        # no region has totalPop > 1000, so the premise never fires
        assert len(find_aggregate_violations(region_graph, rule)) == 0
        region_graph.set_attribute("empty_region", "totalPop", 5000)
        assert len(find_aggregate_violations(region_graph, rule)) == 1

    def test_count_rule_catches_missing_links(self, region_graph, region_pattern):
        rule = AggregateRule(
            region_pattern,
            LiteralSet(),
            [AggregateLiteral(AggregateTerm("count", "z", "hasDistrict"), Comparison.GE, const(1))],
            name="regions_have_districts",
        )
        violations = find_aggregate_violations(region_graph, rule)
        assert {v.mapping()["z"] for v in violations} == {"empty_region"}

    def test_unbound_variable_rejected(self, region_pattern):
        literal = AggregateLiteral(AggregateTerm("sum", "w", "hasDistrict"), Comparison.GE, const(0))
        with pytest.raises(DependencyError):
            AggregateRule(region_pattern, LiteralSet(), [literal])

    def test_empty_conclusion_rejected(self, region_pattern):
        with pytest.raises(DependencyError):
            AggregateRule(region_pattern, LiteralSet(), [])

    def test_multiple_rules(self, region_graph, region_pattern, sum_rule):
        count_rule = AggregateRule(
            region_pattern,
            LiteralSet(),
            [AggregateLiteral(AggregateTerm("count", "z", "hasDistrict"), Comparison.GE, const(1))],
            name="regions_have_districts",
        )
        region_graph.set_attribute("region", "totalPop", 601)
        violations = find_aggregate_violations(region_graph, [sum_rule, count_rule])
        assert violations.rules_violated() == {"district_sum", "regions_have_districts"}
