"""Fault-tolerance suite: supervision, recovery parity, and degradation.

The contract under test: a worker SIGKILLed mid-run must not change the
answer.  The parent re-executes the dead worker's unconfirmed units (on a
respawned replacement or the survivors) and its dedup sets absorb the
duplicates, so the recovered run's ``ViolationSet`` is **byte-identical**
to the serial oracle — under fork and spawn, across storage backends,
with the planner on and off.  When the restart budget is spent or a unit
keeps killing its worker, the run *degrades* (finishes on the parent's
serial path, ``degraded=True``) instead of failing.

Every fault here is injected deterministically through ``REPRO_FAULTS``
(:mod:`repro.testing.faults`); nothing in this file kills processes by
timing races.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import DetectionOptions, Detector
from repro.detect.parallel.executor import (
    WarmExecutorPool,
    fault_tolerance_counters,
)
from repro.errors import DeadlineExceededError, ReproError, ServiceError
from repro.graph.updates import UpdateGenerator
from repro.service import DetectionService, ServiceClient
from repro.service.jobs import DetectionJobPool
from repro.service.protocol import error_record, parse_detect_request
from repro.storage.wal import WriteAheadLog
from repro.testing.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    resolve_fault_plan,
    wal_fault_injector,
)


@pytest.fixture(scope="module")
def kb_graph():
    config = KBConfig(
        name="kb-faults",
        num_entities=150,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=2.0,
        error_rate=0.08,
        seed=8,
        hub_link_fraction=0.4,
        num_hubs=2,
    )
    return knowledge_graph(config)


@pytest.fixture(scope="module")
def kb_rules(kb_graph):
    return benchmark_rules(kb_graph, count=12, max_diameter=4, seed=2)


@pytest.fixture(scope="module")
def kb_delta(kb_graph):
    return UpdateGenerator(seed=21).generate(kb_graph, 80, insert_ratio=0.5)


@pytest.fixture(scope="module")
def serial_result(kb_graph, kb_rules):
    return Detector(kb_rules, engine="batch").run(kb_graph)


def _options(**overrides) -> DetectionOptions:
    return DetectionOptions(execution="processes", **overrides)


# ------------------------------------------------------------ faults module


class TestFaultPlan:
    def test_parse_round_trips(self):
        text = "worker_death:worker=0,epoch=0,after=5;wal_fsync:after=2,times=3"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.to_text()).to_text() == plan.to_text()
        assert len(plan.specs) == 2

    def test_unknown_kind_is_refused(self):
        with pytest.raises(ReproError):
            FaultPlan.parse("meteor_strike")

    def test_unknown_field_is_refused(self):
        with pytest.raises(ReproError):
            FaultPlan.parse("worker_death:wrkr=0")

    def test_trigger_point_is_deterministic(self):
        a = FaultSpec(kind="worker_death", worker=1, seed=7)
        b = FaultSpec(kind="worker_death", worker=1, seed=7)
        assert a.trigger_point() == b.trigger_point()
        assert FaultSpec(kind="worker_death", after=5).trigger_point() == 5

    def test_worker_and_epoch_selectors(self):
        plan = FaultPlan.parse("worker_death:worker=1,epoch=0")
        assert plan.for_worker(1, 0) is not None
        assert plan.for_worker(0, 0) is None
        assert plan.for_worker(1, 1) is None
        # no selectors: matches every incarnation
        broad = FaultPlan.parse("worker_death")
        assert broad.for_worker(3, 2) is not None

    def test_resolution_defaults_to_off(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve_fault_plan() is None
        assert wal_fault_injector() is None
        monkeypatch.setenv(FAULTS_ENV, "wal_fsync:after=1")
        assert wal_fault_injector() is not None
        assert resolve_fault_plan().for_worker(0, 0) is None  # wal-only plan


# --------------------------------------------------- crash recovery parity


class TestCrashRecoveryParity:
    @pytest.mark.parametrize("backend", ("indexed", "csr"))
    @pytest.mark.parametrize("use_planner", (True, False))
    def test_sigkilled_worker_is_byte_identical_fork(
        self, kb_graph, kb_rules, backend, use_planner, monkeypatch
    ):
        graph = kb_graph.with_backend(backend)
        serial = Detector(
            kb_rules, engine="batch", options=DetectionOptions(use_planner=use_planner)
        ).run(graph)
        monkeypatch.setenv(FAULTS_ENV, "worker_death:worker=0,epoch=0,after=3")
        result = Detector(
            kb_rules,
            engine="parallel",
            processors=2,
            options=_options(use_planner=use_planner, start_method="fork"),
        ).run(graph)
        assert len(serial.violations) > 0
        assert result.violations.to_json() == serial.violations.to_json()
        assert not result.degraded
        assert not result.stopped_early

    def test_sigkilled_worker_is_byte_identical_spawn(
        self, kb_graph, kb_rules, serial_result, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "worker_death:worker=0,epoch=0,after=3")
        result = Detector(
            kb_rules,
            engine="parallel",
            processors=2,
            options=_options(start_method="spawn"),
        ).run(kb_graph)
        assert result.violations.to_json() == serial_result.violations.to_json()
        assert not result.degraded

    def test_restarts_are_counted(self, kb_graph, kb_rules, serial_result, monkeypatch):
        before = fault_tolerance_counters()
        monkeypatch.setenv(FAULTS_ENV, "worker_death:worker=0,epoch=0,after=2")
        result = Detector(
            kb_rules, engine="parallel", processors=2, options=_options()
        ).run(kb_graph)
        after = fault_tolerance_counters()
        assert result.violations.to_json() == serial_result.violations.to_json()
        assert after["worker_restarts"] > before["worker_restarts"]
        assert after["units_retried"] > before["units_retried"]

    def test_incremental_crash_parity(self, kb_graph, kb_rules, kb_delta, monkeypatch):
        serial = Detector(kb_rules, engine="incremental").run_incremental(
            kb_graph, kb_delta
        )
        monkeypatch.setenv(FAULTS_ENV, "worker_death:worker=0,epoch=0,after=3")
        result = Detector(
            kb_rules, engine="parallel", processors=2, options=_options()
        ).run_incremental(kb_graph, kb_delta)
        assert serial.total_changes() > 0
        assert result.introduced().to_json() == serial.introduced().to_json()
        assert result.removed().to_json() == serial.removed().to_json()
        assert not result.degraded


# -------------------------------------------------- degradation and quarantine


class TestGracefulDegradation:
    def test_poison_unit_is_quarantined(
        self, kb_graph, kb_rules, serial_result, monkeypatch
    ):
        # worker 0 dies on its first unit in *every* incarnation: the unit
        # exhausts its retry cap, is quarantined, and completes on the
        # parent's serial path — with the exact same answer
        monkeypatch.setenv(FAULTS_ENV, "worker_death:worker=0,after=1")
        result = Detector(
            kb_rules, engine="parallel", processors=2, options=_options()
        ).run(kb_graph)
        assert result.violations.to_json() == serial_result.violations.to_json()
        assert result.degraded
        assert result.stop_reason == "units_quarantined"
        assert not result.stopped_early

    def test_restart_budget_exhaustion_degrades(
        self, kb_graph, kb_rules, serial_result, monkeypatch
    ):
        before = fault_tolerance_counters()
        monkeypatch.setenv(FAULTS_ENV, "worker_death:after=2")
        monkeypatch.setenv("REPRO_WORKER_RESTARTS", "0")
        result = Detector(
            kb_rules, engine="parallel", processors=2, options=_options()
        ).run(kb_graph)
        after = fault_tolerance_counters()
        assert result.violations.to_json() == serial_result.violations.to_json()
        assert result.degraded
        assert after["degraded_runs"] > before["degraded_runs"]

    def test_hung_worker_is_recovered_by_heartbeat(
        self, kb_graph, kb_rules, serial_result, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "hang_worker:worker=0,epoch=0,after=2")
        monkeypatch.setenv("REPRO_WORKER_HEARTBEAT_PERIOD", "0.2")
        monkeypatch.setenv("REPRO_WORKER_HEARTBEAT_TIMEOUT", "2.0")
        result = Detector(
            kb_rules, engine="parallel", processors=2, options=_options()
        ).run(kb_graph)
        assert result.violations.to_json() == serial_result.violations.to_json()

    def test_stuck_worker_shutdown_is_bounded(self, kb_graph, kb_rules, monkeypatch):
        # worker 0 hangs (ignoring SIGTERM) while the cost budget stops the
        # run: shutdown must escalate join -> terminate -> kill within the
        # configured grace instead of waiting on the hung worker forever
        monkeypatch.setenv(FAULTS_ENV, "hang_worker:worker=0,after=1")
        monkeypatch.setenv("REPRO_SHUTDOWN_GRACE", "1.0")
        started = time.monotonic()
        result = Detector(
            kb_rules,
            engine="parallel",
            processors=2,
            options=_options(max_cost=5.0),
        ).run(kb_graph)
        elapsed = time.monotonic() - started
        assert result.stopped_early
        assert result.stop_reason == "max_cost"
        assert elapsed < 30.0

    def test_warm_pool_evicts_dead_crews(self, kb_graph, kb_rules, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        pool = WarmExecutorPool(2)
        try:
            detector = Detector(
                kb_rules,
                engine="parallel",
                processors=2,
                options=_options(),
                executor_pool=pool,
            )
            detector.run(kb_graph)
            assert pool.stats()["warm"]
            # kill the warm crew out from under the pool
            for worker in pool._crew.workers:
                worker.kill()
                worker.join(5.0)
            assert pool.maintain() is True
            assert pool.stats()["evictions"] == 1
            assert not pool.stats()["warm"]
        finally:
            pool.shutdown()


# ------------------------------------------------------------- WAL faults


class TestWalFsyncFailure:
    def test_fsync_failure_rolls_back_and_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "wal_fsync:after=2,times=1")
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"kind": "a"})
        with pytest.raises(ReproError, match="could not be made durable"):
            wal.append({"kind": "b"})
        # the failed record never became durable; the log is still usable
        assert wal.last_lsn == 1
        wal.append({"kind": "c"})
        assert [r["kind"] for r in wal.records()] == ["a", "c"]
        wal.close()
        # the data dir is recoverable: reopen scans cleanly
        monkeypatch.delenv(FAULTS_ENV)
        reopened = WriteAheadLog(path)
        assert reopened.last_lsn == 2
        assert [r["kind"] for r in reopened.records()] == ["a", "c"]
        reopened.close()

    def test_every_append_failing_keeps_file_empty(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "wal_fsync:after=1,times=100")
        wal = WriteAheadLog(tmp_path / "wal.log")
        for _ in range(3):
            with pytest.raises(ReproError):
                wal.append({"kind": "x"})
        assert wal.last_lsn == 0
        assert list(wal.records()) == []
        wal.close()


# ------------------------------------------------------- service deadlines


class TestRequestDeadlines:
    def test_timeout_seconds_round_trips(self):
        request = parse_detect_request({"catalog": "c", "timeout_seconds": 2.5})
        assert request.timeout_seconds == 2.5
        assert parse_detect_request(request.to_document()) == request

    def test_non_positive_timeout_is_refused(self):
        with pytest.raises(ServiceError):
            parse_detect_request({"catalog": "c", "timeout_seconds": 0})

    def test_error_record_retryable_flag(self):
        assert "retryable" not in error_record("boom")
        assert error_record("boom", retryable=True)["retryable"] is True

    def test_deadline_before_first_record(self):
        pool = DetectionJobPool(max_jobs=1)
        release = threading.Event()

        def slow():
            release.wait(10.0)
            yield {"type": "summary"}

        stream = pool.run_stream(slow(), timeout_seconds=0.2)
        try:
            with pytest.raises(DeadlineExceededError):
                next(stream)
        finally:
            release.set()
            stream.close()

    def test_deadline_mid_stream(self):
        pool = DetectionJobPool(max_jobs=1)
        release = threading.Event()

        def slow():
            yield {"type": "violation"}
            release.wait(10.0)
            yield {"type": "summary"}

        stream = pool.run_stream(slow(), timeout_seconds=0.3)
        try:
            assert next(stream)["type"] == "violation"
            with pytest.raises(DeadlineExceededError):
                next(stream)
        finally:
            release.set()
            stream.close()

    def test_no_deadline_streams_to_completion(self):
        pool = DetectionJobPool(max_jobs=1)
        stream = pool.run_stream(iter([{"type": "summary"}]))
        assert [r["type"] for r in stream] == ["summary"]


# --------------------------------------------------------- service surface


class TestServiceFaultSurface:
    def test_degraded_summary_and_health_counters(
        self, kb_graph, kb_rules, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "worker_death:worker=0,after=1")
        before = fault_tolerance_counters()["worker_restarts"]
        service = DetectionService(port=0)
        service.register_graph("kb", kb_graph)
        service.manager.register_catalog("bench", kb_rules)
        with service:
            client = ServiceClient(service.url)
            reply = client.detect(
                "kb", catalog="bench", execution="processes", processors=2
            )
            assert reply.summary["degraded"] is True
            health = client.health()
            assert health["fault_tolerance"]["worker_restarts"] > before
            assert health["fault_tolerance"]["degraded_runs"] >= 1

    def test_summary_degraded_defaults_false(self, kb_graph, kb_rules):
        service = DetectionService(port=0)
        service.register_graph("kb", kb_graph)
        service.manager.register_catalog("bench", kb_rules)
        with service:
            client = ServiceClient(service.url)
            reply = client.detect("kb", catalog="bench")
            assert reply.summary["degraded"] is False


# ----------------------------------------------------------- client retry


class TestClientRetries:
    @pytest.fixture()
    def flaky_server(self):
        """An HTTP server whose /health 503s twice, then succeeds."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        counters = {"health": 0, "detect": 0}

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # noqa: A002
                pass

            def _reply(self, status, document):
                body = json.dumps(document).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802
                counters["health"] += 1
                if counters["health"] <= 2:
                    self._reply(503, {"error": "warming up"})
                else:
                    self._reply(200, {"status": "ok"})

            def do_POST(self):  # noqa: N802
                counters["detect"] += 1
                length = int(self.headers.get("Content-Length") or 0)
                self.rfile.read(length)
                self._reply(503, {"error": "always failing"})

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{httpd.server_address[1]}", counters
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_idempotent_get_is_retried(self, flaky_server):
        url, counters = flaky_server
        client = ServiceClient(url, retries=3, retry_backoff=0.01)
        assert client.health()["status"] == "ok"
        assert counters["health"] == 3

    def test_get_without_retries_fails_fast(self, flaky_server):
        url, counters = flaky_server
        client = ServiceClient(url)
        with pytest.raises(ServiceError, match="503"):
            client.health()
        assert counters["health"] == 1

    def test_post_is_never_retried(self, flaky_server):
        url, counters = flaky_server
        client = ServiceClient(url, retries=5, retry_backoff=0.01)
        with pytest.raises(ServiceError, match="503"):
            client.checkpoint()
        assert counters["detect"] == 1

    def test_split_timeouts_accepted(self, flaky_server):
        url, _ = flaky_server
        client = ServiceClient(url, connect_timeout=1.0, read_timeout=7.5, retries=3)
        assert client.connect_timeout == 1.0
        assert client.read_timeout == 7.5

    def test_negative_retries_refused(self):
        with pytest.raises(ServiceError):
            ServiceClient("http://127.0.0.1:1", retries=-1)


# -------------------------------------------------------------- environment


class TestZeroOverheadDefault:
    def test_no_plan_resolves_to_none(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve_fault_plan() is None

    def test_counters_snapshot_shape(self):
        counters = fault_tolerance_counters()
        assert set(counters) == {"worker_restarts", "units_retried", "degraded_runs"}
        assert all(isinstance(value, int) for value in counters.values())
