"""Tests for the bounded satisfiability / strong satisfiability / implication checkers.

These mirror Example 5 and the surrounding discussion in Section 4 of the
paper, plus boundary behaviour (non-linear rules are rejected, witnesses are
genuine models).
"""

from __future__ import annotations

import pytest

from repro.core.builtin_rules import phi5, phi6, phi7, phi8, phi9
from repro.core.implication import is_redundant, minimal_cover
from repro.core.ngd import NGD, RuleSet
from repro.core.satisfiability import check_satisfiability, implies, is_satisfiable, is_strongly_satisfiable
from repro.core.validation import graph_satisfies
from repro.errors import SatisfiabilityError
from repro.graph.graph import WILDCARD
from repro.graph.pattern import Pattern


def single_node_rule(premise: str, conclusion: str, label: str = WILDCARD, name: str = "r") -> NGD:
    pattern = Pattern.from_edges(f"Q_{name}", nodes=[("x", label)])
    return NGD.from_text(pattern, premise, conclusion, name=name)


class TestSatisfiabilityExample5:
    def test_phi5_and_phi6_conflict(self):
        # A = 7 ∧ B = 7 contradicts A + B = 11 on every shared node
        assert not is_satisfiable(RuleSet([phi5(), phi6()]))

    def test_phi5_alone_is_satisfiable(self):
        result = check_satisfiability(RuleSet([phi5()]))
        assert result.satisfiable
        assert result.witness is not None
        assert graph_satisfies(result.witness, [phi5()])

    def test_relabelled_phi6_restores_satisfiability(self):
        # when φ6 only constrains 'a'-labelled nodes, a 'b'-labelled model satisfies both
        assert is_satisfiable(RuleSet([phi5(), phi6("a")]))

    def test_relabelled_set_is_not_strongly_satisfiable(self):
        # strong satisfiability forces an 'a' node to exist, resurrecting the conflict
        assert not is_strongly_satisfiable(RuleSet([phi5(), phi6("a")]))

    def test_phi7_phi8_phi9_conflict(self):
        assert not is_satisfiable(RuleSet([phi7(), phi8(), phi9()]))

    def test_each_of_phi7_phi8_phi9_alone_is_satisfiable(self):
        for rule in (phi7(), phi8(), phi9()):
            assert is_satisfiable(RuleSet([rule]))

    def test_pairs_without_the_full_conflict_are_satisfiable(self):
        assert is_satisfiable(RuleSet([phi7(), phi9()]))
        assert is_satisfiable(RuleSet([phi8(), phi9()]))
        assert is_satisfiable(RuleSet([phi7(), phi8()]))


class TestSatisfiabilityGeneral:
    def test_empty_rule_set_is_satisfiable(self):
        assert is_satisfiable(RuleSet([]))

    def test_witness_satisfies_all_rules(self):
        rules = RuleSet([single_node_rule("", "x.A >= 3, x.A <= 5", name="range")])
        result = check_satisfiability(rules)
        assert result.satisfiable
        assert graph_satisfies(result.witness, rules)
        value = result.witness_attributes[next(iter(result.witness_attributes))]
        assert 3 <= value <= 5

    def test_unsatisfiable_equalities(self):
        rules = RuleSet(
            [
                single_node_rule("", "x.A = 1", name="one"),
                single_node_rule("", "x.A = 2", name="two"),
            ]
        )
        assert not is_satisfiable(rules)

    def test_arithmetic_only_conflict(self):
        # 2·A = 5 has no integer solution even though it is rationally satisfiable
        rules = RuleSet([single_node_rule("", "x.A + x.A = 5", name="parity")])
        assert not is_satisfiable(rules)

    def test_premise_can_be_escaped_by_dropping_attribute(self):
        # A ≤ 3 → B > 6 together with B < 6 is satisfiable by a node without attribute A? No:
        # φ9-style conclusion forces A's presence; without it the set is satisfiable.
        rules = RuleSet(
            [
                single_node_rule("x.A <= 3", "x.B > 6", name="guard"),
                single_node_rule("", "x.B < 6", name="cap"),
            ]
        )
        assert is_satisfiable(rules)

    def test_strong_satisfiability_of_compatible_patterns(self):
        rules = RuleSet(
            [
                single_node_rule("", "x.A = 1", label="a", name="ra"),
                single_node_rule("", "x.B = 2", label="b", name="rb"),
            ]
        )
        assert is_strongly_satisfiable(rules)

    def test_nonlinear_rules_are_rejected(self):
        pattern = Pattern.from_edges("Qnl", nodes=[("x", WILDCARD)])
        rule = NGD.from_text(pattern, "", "x.A * x.A = 4", allow_nonlinear=True, name="square")
        with pytest.raises(SatisfiabilityError):
            is_satisfiable(RuleSet([rule]))

    def test_absolute_value_rules_are_rejected(self):
        rule = single_node_rule("", "|x.A| = 4", name="absrule")
        with pytest.raises(SatisfiabilityError):
            is_satisfiable(RuleSet([rule]))


class TestImplication:
    def test_equality_implies_weaker_inequality(self):
        sigma = RuleSet([single_node_rule("", "x.A = 5", name="exact")])
        assert implies(sigma, single_node_rule("", "x.A >= 5", name="lower"))
        assert implies(sigma, single_node_rule("", "x.A <= 5", name="upper"))

    def test_equality_does_not_imply_stronger_bound(self):
        sigma = RuleSet([single_node_rule("", "x.A = 5", name="exact")])
        assert not implies(sigma, single_node_rule("", "x.A >= 6", name="too_strong"))

    def test_transitive_bound_implication(self):
        sigma = RuleSet(
            [
                single_node_rule("", "x.A <= x.B", name="ab"),
                single_node_rule("", "x.B <= x.C", name="bc"),
            ]
        )
        assert implies(sigma, single_node_rule("", "x.A <= x.C", name="ac"))
        assert not implies(sigma, single_node_rule("", "x.C <= x.A", name="ca"))

    def test_rule_implies_itself(self):
        rule = single_node_rule("x.A > 0", "x.B > 0", name="self")
        assert implies(RuleSet([rule]), rule)

    def test_empty_sigma_implies_only_valid_rules(self):
        tautology = single_node_rule("x.A > 3", "x.A >= 2", name="taut")
        assert implies(RuleSet([]), tautology)
        assert not implies(RuleSet([]), single_node_rule("", "x.A = 1", name="not_valid"))

    def test_pattern_label_mismatch_blocks_implication(self):
        sigma = RuleSet([single_node_rule("", "x.A = 5", label="a", name="on_a")])
        candidate = single_node_rule("", "x.A = 5", label="b", name="on_b")
        assert not implies(sigma, candidate)

    def test_is_redundant_and_minimal_cover(self):
        exact = single_node_rule("", "x.A = 5", name="exact")
        weaker = single_node_rule("", "x.A >= 5", name="weaker")
        rules = RuleSet([exact, weaker])
        assert is_redundant(rules, weaker)
        assert not is_redundant(rules, exact)
        cover = minimal_cover(rules)
        assert [rule.name for rule in cover] == ["exact"]

    def test_minimal_cover_keeps_independent_rules(self):
        rules = RuleSet(
            [
                single_node_rule("", "x.A = 5", name="a5"),
                single_node_rule("", "x.B = 7", name="b7"),
            ]
        )
        assert len(minimal_cover(rules)) == 2
