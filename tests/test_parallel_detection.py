"""Tests for the parallel algorithms (PDect, PIncDect), cluster simulator and balancing policy."""

from __future__ import annotations

import pytest

from repro.core.validation import find_violations
from repro.core.violations import ViolationDelta
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import BalancingPolicy, dect, inc_dect, p_dect, pinc_dect
from repro.detect.parallel.balancing import plan_rebalancing, should_split, skewness
from repro.detect.parallel.cluster import ClusterSimulator
from repro.detect.parallel.workunits import WorkUnit, expand_work_unit, initial_units_for_pivot, seed_consistent
from repro.errors import ClusterError
from repro.graph.updates import UpdateGenerator, apply_update


@pytest.fixture(scope="module")
def kb_graph():
    config = KBConfig(
        name="kb-parallel",
        num_entities=150,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=2.0,
        error_rate=0.08,
        seed=8,
        hub_link_fraction=0.4,
        num_hubs=2,
    )
    return knowledge_graph(config)


@pytest.fixture(scope="module")
def kb_rules(kb_graph):
    return benchmark_rules(kb_graph, count=12, max_diameter=4, seed=2)


@pytest.fixture(scope="module")
def kb_delta(kb_graph):
    return UpdateGenerator(seed=21).generate(kb_graph, 80, insert_ratio=0.5)


class TestClusterSimulator:
    def test_requires_valid_configuration(self):
        with pytest.raises(ClusterError):
            ClusterSimulator(0, 10)
        with pytest.raises(ClusterError):
            ClusterSimulator(2, -1)

    def test_charges_advance_clocks(self):
        cluster = ClusterSimulator(3, latency=5)
        cluster.charge(0, 10)
        cluster.charge(1, 4)
        assert cluster.makespan() == 10
        assert cluster.global_time() == 10

    def test_broadcast_charges_all_and_origin_extra(self):
        cluster = ClusterSimulator(4, latency=5)
        cluster.charge_broadcast(2, per_worker_amount=3, setup_cost=7)
        traces = cluster.traces()
        assert traces[0].busy_time == 3
        assert traces[2].busy_time == 10
        assert cluster.total_messages == 4

    def test_queue_operations(self):
        cluster = ClusterSimulator(2, latency=1)
        cluster.enqueue(0, "u1")
        cluster.enqueue(0, "u2")
        assert cluster.queue_lengths() == [2, 0]
        assert cluster.next_busy_worker() == 0
        assert cluster.pop_unit(0) == "u2"  # LIFO
        assert cluster.has_pending_work()
        with pytest.raises(ClusterError):
            cluster.pop_unit(1)

    def test_move_units(self):
        cluster = ClusterSimulator(2, latency=2)
        for index in range(5):
            cluster.enqueue(0, f"u{index}")
        moved = cluster.move_units(0, 1, 3)
        assert moved == 3
        assert cluster.queue_lengths() == [2, 3]
        # charged one message to both endpoints
        assert cluster.traces()[0].units_shed == 3
        assert cluster.makespan() == 2

    def test_negative_charge_rejected(self):
        cluster = ClusterSimulator(1, latency=0)
        with pytest.raises(ClusterError):
            cluster.charge(0, -1)


class TestBalancingPolicy:
    def test_variant_suffixes(self):
        assert BalancingPolicy.hybrid().variant_suffix() == ""
        assert BalancingPolicy.no_splitting().variant_suffix() == "ns"
        assert BalancingPolicy.no_rebalancing().variant_suffix() == "nb"
        assert BalancingPolicy.none().variant_suffix() == "NO"

    def test_should_split_threshold(self):
        # sequential cost 1000 vs parallel 60*(1+1) + 1000/8 = 245 → split
        assert should_split(1000, matched_depth=1, processors=8, latency=60)
        # tiny adjacency is never worth a broadcast
        assert not should_split(10, matched_depth=1, processors=8, latency=60)
        # a single processor can never split
        assert not should_split(10_000, matched_depth=1, processors=1, latency=60)

    def test_skewness(self):
        values = skewness([9, 1, 1, 1])
        assert values[0] == pytest.approx(3.0)
        assert skewness([0, 0]) == [0.0, 0.0]

    def test_plan_rebalancing_moves_excess_to_idle(self):
        moves = plan_rebalancing([40, 0, 0, 0], eta=3.0, eta_prime=0.7)
        assert moves
        assert all(origin == 0 for origin, _, _ in moves)
        assert sum(count for _, _, count in moves) == 30  # excess above the average of 10

    def test_plan_rebalancing_no_receivers(self):
        assert plan_rebalancing([5, 5, 5, 5]) == []

    def test_plan_rebalancing_limits_receivers_to_excess(self):
        # the straggler's excess is 3 units; only 3 of the 7 idle workers should be involved
        moves = plan_rebalancing([4, 0, 0, 0, 0, 0, 0, 0], eta=3.0, eta_prime=0.7)
        assert len(moves) == 3
        assert sum(count for _, _, count in moves) == 3


class TestWorkUnits:
    def test_initial_unit_from_pivot(self, kb_rules):
        rule = kb_rules[1]
        seed = {variable: f"node-{variable}" for variable in list(rule.pattern.variables)[:2]}
        unit = initial_units_for_pivot(1, rule, seed, from_insertion=True)
        assert unit.depth() == len(seed)
        assert not unit.is_complete() or rule.pattern.node_count() == len(seed)

    def test_expand_respects_labels_and_edges(self, triangle_graph, knows_rule):
        unit = WorkUnit(0, order=("x", "y"), assignment=(("x", "a"),))
        outcome = expand_work_unit(triangle_graph, knows_rule, unit)
        assert outcome.new_units == []  # the only extension completes the match
        assert len(outcome.violations) == 1

    def test_expand_complete_unit_checks_violation(self, triangle_graph, knows_rule):
        unit = WorkUnit(0, order=("x", "y"), assignment=(("x", "a"), ("y", "b")))
        outcome = expand_work_unit(triangle_graph, knows_rule, unit)
        assert len(outcome.violations) == 1

    def test_seed_consistent_checks_edges(self, triangle_graph, knows_rule):
        good = WorkUnit(0, order=("x", "y"), assignment=(("x", "a"), ("y", "b")))
        bad = WorkUnit(0, order=("x", "y"), assignment=(("x", "b"), ("y", "a")))
        assert seed_consistent(triangle_graph, knows_rule, good)
        assert not seed_consistent(triangle_graph, knows_rule, bad)


class TestPDect:
    def test_matches_sequential_batch(self, kb_graph, kb_rules):
        expected = find_violations(kb_graph, kb_rules)
        for processors in (1, 4, 8):
            result = p_dect(kb_graph, kb_rules, processors=processors)
            assert result.violations == expected

    def test_makespan_decreases_with_processors(self, kb_graph, kb_rules):
        few = p_dect(kb_graph, kb_rules, processors=2).cost
        many = p_dect(kb_graph, kb_rules, processors=16).cost
        assert many < few


class TestPIncDect:
    def _ground_truth(self, graph, rules, delta):
        before = find_violations(graph, rules)
        after = find_violations(apply_update(graph, delta), rules)
        return ViolationDelta.from_sets(before, after)

    @pytest.mark.parametrize("processors", [1, 2, 8, 16])
    def test_matches_ground_truth(self, kb_graph, kb_rules, kb_delta, processors):
        expected = self._ground_truth(kb_graph, kb_rules, kb_delta)
        result = pinc_dect(kb_graph, kb_rules, kb_delta, processors=processors)
        assert result.delta == expected

    @pytest.mark.parametrize(
        "policy_factory",
        [BalancingPolicy.hybrid, BalancingPolicy.no_splitting, BalancingPolicy.no_rebalancing, BalancingPolicy.none],
    )
    def test_all_variants_are_correct(self, kb_graph, kb_rules, kb_delta, policy_factory):
        expected = self._ground_truth(kb_graph, kb_rules, kb_delta)
        result = pinc_dect(kb_graph, kb_rules, kb_delta, processors=8, policy=policy_factory())
        assert result.delta == expected

    def test_variant_names_follow_policy(self, kb_graph, kb_rules, kb_delta):
        assert pinc_dect(kb_graph, kb_rules, kb_delta, processors=4).algorithm == "PIncDect"
        assert (
            pinc_dect(kb_graph, kb_rules, kb_delta, processors=4, policy=BalancingPolicy.none()).algorithm
            == "PIncDectNO"
        )

    def test_makespan_decreases_with_processors(self, kb_graph, kb_rules, kb_delta):
        p4 = pinc_dect(kb_graph, kb_rules, kb_delta, processors=4).cost
        p16 = pinc_dect(kb_graph, kb_rules, kb_delta, processors=16).cost
        assert p16 < p4

    def test_parallel_beats_sequential_yardstick(self, kb_graph, kb_rules, kb_delta):
        sequential = inc_dect(kb_graph, kb_rules, kb_delta).cost
        parallel = pinc_dect(kb_graph, kb_rules, kb_delta, processors=8).cost
        assert parallel < sequential

    def test_incremental_parallel_beats_batch_parallel_for_small_updates(self, kb_graph, kb_rules):
        delta = UpdateGenerator(seed=5).generate(kb_graph, max(1, kb_graph.edge_count() // 20))
        incremental = pinc_dect(kb_graph, kb_rules, delta, processors=8).cost
        batch = p_dect(kb_graph, kb_rules, processors=8).cost
        assert incremental < batch

    def test_worker_traces_account_all_units(self, kb_graph, kb_rules, kb_delta):
        result = pinc_dect(kb_graph, kb_rules, kb_delta, processors=8)
        assert len(result.worker_traces) == 8
        assert sum(trace.work_units_processed for trace in result.worker_traces) > 0

    def test_empty_delta(self, kb_graph, kb_rules):
        from repro.graph.updates import BatchUpdate

        result = pinc_dect(kb_graph, kb_rules, BatchUpdate(), processors=4)
        assert result.delta.is_empty()
