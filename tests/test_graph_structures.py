"""Unit tests for updates, neighbourhoods, partitioning, generators and graph IO."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, PartitionError, UpdateError
from repro.graph.generators import chain_graph, community_graph, power_law_graph, random_labeled_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_update,
    read_edge_list,
    save_graph,
    save_update,
    write_edge_list,
)
from repro.graph.neighborhood import (
    d_neighbor,
    multi_source_nodes_within_hops,
    nodes_within_hops,
    undirected_distance,
    update_neighborhood,
)
from repro.graph.partition import bfs_edge_cut, greedy_vertex_cut, hash_edge_cut
from repro.graph.updates import BatchUpdate, EdgeDeletion, EdgeInsertion, NodePayload, UpdateGenerator, apply_update


class TestBatchUpdate:
    def test_builder_and_split(self):
        batch = BatchUpdate().insert("a", "b", "e").delete("c", "d", "e")
        assert len(batch) == 2
        assert len(batch.insertions) == 1
        assert len(batch.deletions) == 1
        assert batch.inserted_edge_keys() == frozenset({("a", "b", "e")})
        assert batch.deleted_edge_keys() == frozenset({("c", "d", "e")})

    def test_touched_nodes(self):
        batch = BatchUpdate().insert("a", "b", "e").delete("c", "d", "e")
        assert batch.touched_nodes() == frozenset({"a", "b", "c", "d"})

    def test_insertion_deletion_ratio(self):
        batch = BatchUpdate().insert("a", "b", "e").insert("a", "c", "e").delete("a", "d", "e")
        assert batch.insertion_deletion_ratio() == pytest.approx(2.0)

    def test_reversed_roundtrip(self, triangle_graph):
        batch = BatchUpdate().delete("a", "b", "knows")
        updated = apply_update(triangle_graph, batch)
        restored = apply_update(updated, batch.reversed())
        assert restored.has_edge("a", "b", "knows")

    def test_apply_insertion_creates_nodes_with_payload(self, triangle_graph):
        payload = NodePayload("company", {"val": 7})
        batch = BatchUpdate().insert("a", "acme", "works_at", target_payload=payload)
        updated = apply_update(triangle_graph, batch)
        assert updated.node("acme").label == "company"
        assert updated.node("acme").attribute("val") == 7
        assert not triangle_graph.has_node("acme")  # original untouched

    def test_apply_in_place(self, triangle_graph):
        batch = BatchUpdate().delete("a", "b", "knows")
        result = apply_update(triangle_graph, batch, in_place=True)
        assert result is triangle_graph
        assert not triangle_graph.has_edge("a", "b", "knows")

    def test_duplicate_insertion_rejected(self, triangle_graph):
        batch = BatchUpdate().insert("a", "b", "knows")
        with pytest.raises(UpdateError):
            apply_update(triangle_graph, batch)

    def test_missing_deletion_rejected(self, triangle_graph):
        batch = BatchUpdate().delete("a", "b", "likes")
        with pytest.raises(UpdateError):
            apply_update(triangle_graph, batch)


class TestUpdateGenerator:
    def test_generated_size_and_determinism(self):
        graph = random_labeled_graph(100, 300, num_labels=5, num_edge_labels=3, seed=1)
        first = UpdateGenerator(seed=4).generate(graph, 50, insert_ratio=0.5)
        second = UpdateGenerator(seed=4).generate(graph, 50, insert_ratio=0.5)
        assert len(first) == 50
        assert [u.edge_key() for u in first] == [u.edge_key() for u in second]

    def test_generated_update_applies_cleanly(self):
        graph = random_labeled_graph(80, 200, num_labels=5, num_edge_labels=3, seed=2)
        delta = UpdateGenerator(seed=9).generate(graph, 40, insert_ratio=0.4)
        updated = apply_update(graph, delta)
        updated.validate_consistency()

    def test_ratio_controls_mix(self):
        graph = random_labeled_graph(80, 200, num_labels=5, num_edge_labels=3, seed=2)
        all_deletes = UpdateGenerator(seed=3).generate(graph, 30, insert_ratio=0.0)
        assert len(all_deletes.insertions) == 0
        all_inserts = UpdateGenerator(seed=3).generate(graph, 30, insert_ratio=1.0)
        assert len(all_inserts.deletions) == 0

    def test_invalid_arguments(self):
        graph = random_labeled_graph(10, 10, seed=0)
        with pytest.raises(UpdateError):
            UpdateGenerator(seed=0).generate(graph, -1)
        with pytest.raises(UpdateError):
            UpdateGenerator(seed=0).generate(graph, 5, insert_ratio=1.5)


class TestNeighborhood:
    def test_nodes_within_hops(self):
        graph = chain_graph(6)
        assert nodes_within_hops(graph, "n0", 0) == frozenset({"n0"})
        assert nodes_within_hops(graph, "n0", 2) == frozenset({"n0", "n1", "n2"})
        assert nodes_within_hops(graph, "missing", 2) == frozenset()

    def test_d_neighbor_is_induced(self):
        graph = chain_graph(6)
        region = d_neighbor(graph, "n2", 1)
        assert set(region.node_ids()) == {"n1", "n2", "n3"}
        assert region.edge_count() == 2

    def test_multi_source_matches_union(self):
        graph = chain_graph(8)
        union = nodes_within_hops(graph, "n0", 2) | nodes_within_hops(graph, "n7", 2)
        assert multi_source_nodes_within_hops(graph, ["n0", "n7", "ghost"], 2) == union

    def test_update_neighborhood(self):
        graph = chain_graph(8)
        delta = BatchUpdate().delete("n3", "n4", "next")
        region = update_neighborhood(graph, delta, 1)
        assert set(region.node_ids()) == {"n2", "n3", "n4", "n5"}

    def test_undirected_distance(self):
        graph = chain_graph(5)
        assert undirected_distance(graph, "n0", "n4") == 4
        assert undirected_distance(graph, "n0", "n0") == 0
        graph.add_node("isolated", "n")
        assert undirected_distance(graph, "n0", "isolated") == float("inf")


class TestPartitioning:
    @pytest.mark.parametrize("partitioner", [hash_edge_cut, bfs_edge_cut, greedy_vertex_cut])
    def test_every_node_assigned(self, partitioner):
        graph = random_labeled_graph(60, 150, num_labels=4, num_edge_labels=3, seed=5)
        fragmentation = partitioner(graph, 4)
        assigned = set()
        for fragment in fragmentation.fragments:
            assigned |= fragment.nodes
        assert assigned == set(graph.node_ids())

    @pytest.mark.parametrize("partitioner", [hash_edge_cut, bfs_edge_cut, greedy_vertex_cut])
    def test_every_edge_assigned_once(self, partitioner):
        graph = random_labeled_graph(60, 150, num_labels=4, num_edge_labels=3, seed=5)
        fragmentation = partitioner(graph, 4)
        total = sum(fragment.edge_count() for fragment in fragmentation.fragments)
        assert total == graph.edge_count()

    def test_balance_is_reasonable(self):
        graph = random_labeled_graph(100, 200, num_labels=4, num_edge_labels=3, seed=6)
        fragmentation = hash_edge_cut(graph, 5)
        assert fragmentation.balance() < 1.6

    def test_bfs_cut_beats_hash_cut_on_communities(self):
        graph = community_graph(4, 20, intra_probability=0.2, inter_probability=0.002, seed=3)
        bfs_fraction = bfs_edge_cut(graph, 4).edge_cut_fraction()
        hash_fraction = hash_edge_cut(graph, 4).edge_cut_fraction()
        assert bfs_fraction < hash_fraction

    def test_owner_lookup_and_local_subgraph(self):
        graph = random_labeled_graph(40, 80, num_labels=4, num_edge_labels=3, seed=7)
        fragmentation = bfs_edge_cut(graph, 3)
        some_node = next(iter(graph.node_ids()))
        index = fragmentation.owner_of(some_node)
        assert some_node in fragmentation.fragments[index].nodes
        local = fragmentation.local_subgraph(index)
        assert set(fragmentation.fragments[index].nodes) <= set(local.node_ids())

    def test_invalid_fragment_count(self):
        graph = random_labeled_graph(10, 10, seed=0)
        with pytest.raises(PartitionError):
            hash_edge_cut(graph, 0)


class TestGenerators:
    def test_random_graph_size(self):
        graph = random_labeled_graph(200, 400, seed=1)
        assert graph.node_count() == 200
        assert graph.edge_count() == 400

    def test_random_graph_deterministic(self):
        a = random_labeled_graph(50, 100, seed=3)
        b = random_labeled_graph(50, 100, seed=3)
        assert a == b

    def test_random_graph_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            random_labeled_graph(-1, 5)
        with pytest.raises(GraphError):
            random_labeled_graph(1, 5)

    def test_power_law_graph_has_hubs(self):
        graph = power_law_graph(300, edges_per_node=3, seed=2)
        degrees = sorted((graph.degree(node) for node in graph.node_ids()), reverse=True)
        assert degrees[0] > 3 * (sum(degrees) / len(degrees))

    def test_star_and_chain(self):
        star = star_graph(5)
        assert star.degree("hub") == 5
        chain = chain_graph(4)
        assert chain.edge_count() == 3

    def test_community_graph_attributes(self):
        graph = community_graph(2, 10, seed=1)
        assert graph.node_count() == 20
        assert graph.node(0).attribute("community") == 0
        assert graph.node(19).attribute("community") == 1


class TestGraphIO:
    def test_dict_roundtrip(self, triangle_graph):
        document = graph_to_dict(triangle_graph)
        restored = graph_from_dict(document)
        assert restored == triangle_graph

    def test_json_file_roundtrip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(triangle_graph, path)
        assert load_graph(path) == triangle_graph

    def test_update_file_roundtrip(self, tmp_path):
        batch = BatchUpdate()
        batch.insert("a", "b", "e", target_payload=NodePayload("t", {"val": 3}))
        batch.delete("c", "d", "e")
        path = tmp_path / "delta.json"
        save_update(batch, path)
        restored = load_update(path)
        assert len(restored) == 2
        assert isinstance(list(restored)[0], EdgeInsertion)
        assert isinstance(list(restored)[1], EdgeDeletion)

    def test_edge_list_roundtrip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(triangle_graph, path)
        restored = read_edge_list(path)
        assert restored.node_count() == triangle_graph.node_count()
        assert restored.edge_count() == triangle_graph.edge_count()

    def test_graph_from_dict_requires_keys(self):
        with pytest.raises(GraphError):
            graph_from_dict({"nodes": []})
