"""Tests for the datasets (Figure 1, KB analogues, synthetic) and the rule miner."""

from __future__ import annotations

import pytest

from repro.core.validation import find_violations, graph_satisfies
from repro.datasets.figure1 import figure1_graphs
from repro.datasets.kb import DBPEDIA_CONFIG, KBConfig, dbpedia_like, knowledge_graph, pokec_like, yago_like
from repro.datasets.rules import benchmark_rules, graph_schema, rules_with_diameter
from repro.datasets.synthetic import synthetic_graph
from repro.discovery import DiscoveryConfig, discover_ngds, mine_frequent_patterns
from repro.errors import DiscoveryError
from repro.graph.generators import chain_graph


class TestFigure1:
    def test_all_four_graphs_present(self):
        graphs = figure1_graphs()
        assert set(graphs) == {"G1", "G2", "G3", "G4"}
        for graph in graphs.values():
            graph.validate_consistency()

    def test_g2_population_numbers_match_paper(self, g2):
        assert g2.node("female").attribute("val") == 600
        assert g2.node("male").attribute("val") == 722
        assert g2.node("total").attribute("val") == 1572

    def test_g3_ranks_match_paper(self, g3):
        assert g3.node("Corona_rank").attribute("val") == 33
        assert g3.node("Downey_rank").attribute("val") == 11

    def test_each_graph_violates_its_rule(self, figure1_rules):
        graphs = figure1_graphs()
        expected = {"G1": "phi1", "G2": "phi2", "G3": "phi3", "G4": "phi4"}
        for name, graph in graphs.items():
            violations = find_violations(graph, figure1_rules)
            assert violations.rules_violated() == {expected[name]}


class TestKnowledgeGraphs:
    def test_sizes_follow_configuration(self):
        config = KBConfig("t", 50, 5, 4, 3, 3, 1.0, seed=1)
        graph = knowledge_graph(config)
        # one node per entity plus one per numeric fact
        assert graph.node_count() == 50 * (1 + 3)
        assert graph.edge_count() >= 50 * 3

    def test_determinism(self):
        config = KBConfig("t", 40, 4, 4, 3, 3, 1.0, seed=2)
        assert knowledge_graph(config) == knowledge_graph(config)

    def test_error_rate_controls_planted_violations(self):
        clean_cfg = KBConfig("clean", 200, 4, 4, 3, 3, 0.5, error_rate=0.0, seed=3)
        dirty_cfg = KBConfig("dirty", 200, 4, 4, 3, 3, 0.5, error_rate=0.2, seed=3)
        clean, dirty = knowledge_graph(clean_cfg), knowledge_graph(dirty_cfg)
        rules_clean = benchmark_rules(clean, count=8, max_diameter=2)
        rules_dirty = benchmark_rules(dirty, count=8, max_diameter=2)
        assert len(find_violations(clean, rules_clean)) == 0
        assert len(find_violations(dirty, rules_dirty)) > 0

    def test_hub_links_create_skewed_degrees(self):
        graph = knowledge_graph(
            KBConfig("hubby", 300, 4, 4, 3, 3, 2.0, seed=4, hub_link_fraction=0.5, num_hubs=2)
        )
        degrees = sorted((graph.degree(node) for node in graph.node_ids()), reverse=True)
        assert degrees[0] > 10 * (sum(degrees) / len(degrees))

    def test_named_builders_scale(self):
        small = dbpedia_like(scale=0.1)
        base = dbpedia_like(scale=0.2)
        assert small.node_count() < base.node_count()
        assert yago_like(scale=0.1).node_count() > 0
        assert pokec_like(scale=0.1).node_count() > 0

    def test_relative_sizes_mirror_paper(self):
        dbpedia, yago, pokec = dbpedia_like(scale=0.3), yago_like(scale=0.3), pokec_like(scale=0.3)
        assert dbpedia.node_count() > yago.node_count() > pokec.node_count()
        # Pokec is the densest in entity-entity links
        assert pokec.average_degree() > dbpedia.average_degree()

    def test_synthetic_graph_size_knobs(self):
        graph = synthetic_graph(num_nodes=600, num_edges=900, seed=2)
        assert abs(graph.node_count() - 600) < 120
        assert graph.edge_count() > 500


class TestBenchmarkRules:
    def test_schema_introspection(self):
        graph = dbpedia_like(scale=0.1)
        schema = graph_schema(graph)
        assert schema["entity_types"]
        assert schema["value_relations"]
        assert schema["link_relations"]

    def test_requested_count_and_diameter(self):
        graph = dbpedia_like(scale=0.1)
        rules = benchmark_rules(graph, count=30, max_diameter=4)
        assert len(rules) == 30
        assert rules.diameter() <= 4
        assert len({rule.name for rule in rules}) == 30  # unique names

    def test_rules_have_matches_in_their_graph(self):
        graph = dbpedia_like(scale=0.1)
        rules = benchmark_rules(graph, count=6, max_diameter=2)
        from repro.matching.matchn import HomomorphismMatcher

        for rule in rules:
            assert next(iter(HomomorphismMatcher(graph, rule.pattern).matches()), None) is not None

    def test_rules_with_exact_diameter(self):
        graph = dbpedia_like(scale=0.1)
        for diameter in (2, 3, 4, 5, 6):
            rules = rules_with_diameter(graph, diameter, count=10)
            assert rules.diameter() == diameter

    def test_unachievable_diameter_raises(self):
        graph = dbpedia_like(scale=0.1)
        with pytest.raises(ValueError):
            rules_with_diameter(graph, 17, count=5)


class TestDiscovery:
    @pytest.fixture(scope="class")
    def mined(self):
        graph = knowledge_graph(KBConfig("mine", 120, 3, 3, 2, 3, 1.0, error_rate=0.05, seed=6))
        config = DiscoveryConfig(max_pattern_edges=2, max_rules=12, min_support=5, min_confidence=0.9, seed=1)
        return graph, discover_ngds(graph, config)

    def test_discovers_some_rules(self, mined):
        _, rules = mined
        assert len(rules) > 0

    def test_discovered_rules_are_linear_ngds(self, mined):
        _, rules = mined
        assert rules.is_linear()

    def test_discovered_rules_mostly_hold_on_source_graph(self, mined):
        graph, rules = mined
        violations = find_violations(graph, rules)
        from repro.matching.matchn import HomomorphismMatcher

        total_matches = 0
        for rule in rules:
            total_matches += sum(1 for _ in HomomorphismMatcher(graph, rule.pattern).matches())
        # high-confidence rules: violations are a small fraction of all matches
        assert len(violations) <= 0.2 * max(total_matches, 1)

    def test_frequent_patterns_meet_support(self):
        graph = knowledge_graph(KBConfig("sup", 80, 2, 3, 2, 3, 1.0, seed=7))
        config = DiscoveryConfig(max_pattern_edges=2, min_support=10)
        patterns = mine_frequent_patterns(graph, config)
        assert patterns
        from repro.matching.matchn import HomomorphismMatcher

        for pattern in patterns[:5]:
            count = sum(1 for _ in HomomorphismMatcher(graph, pattern).matches())
            assert count >= 10

    def test_unminable_graph_raises(self):
        with pytest.raises(DiscoveryError):
            mine_frequent_patterns(chain_graph(3), DiscoveryConfig(min_support=100))
