"""Tests for the sharded read-only graph images (`repro.graph.sharded`).

The sharding contract the process executor relies on: every node has an
owner, each shard image contains its fragment's dΣ-halo (so connected-
pattern search seeded at an owned node is exact), spooled images
round-trip and memo-load per process, and rule sets with disconnected
patterns are refused localized matching.
"""

from __future__ import annotations

import json

import pytest

from repro.core.builtin_rules import example_rules
from repro.core.ngd import NGD
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.graph.neighborhood import multi_source_nodes_within_hops
from repro.graph.pattern import Pattern
from repro.graph.sharded import (
    ShardedStore,
    clear_spool_cache,
    load_spooled,
    supports_localized_matching,
)


@pytest.fixture(scope="module")
def kb():
    config = KBConfig(
        name="kb-sharded",
        num_entities=80,
        num_entity_types=4,
        num_value_relations=3,
        num_link_relations=3,
        values_per_entity=2,
        links_per_entity=2.0,
        error_rate=0.05,
        seed=13,
    )
    return knowledge_graph(config)


class TestBuild:
    def test_every_node_has_an_owner(self, kb):
        shards = ShardedStore.build(kb, num_shards=4, halo_hops=2)
        assert shards.num_shards == 4
        owners = {shards.owner(node_id) for node_id in kb.node_ids()}
        assert owners <= set(range(4))

    def test_unknown_node_raises(self, kb):
        shards = ShardedStore.build(kb, num_shards=2, halo_hops=1)
        with pytest.raises(PartitionError):
            shards.owner("no-such-node")

    def test_shard_contains_fragment_halo(self, kb):
        halo_hops = 2
        shards = ShardedStore.build(kb, num_shards=3, halo_hops=halo_hops)
        for index in range(3):
            owned = [n for n in kb.node_ids() if shards.owner(n) == index]
            image = shards.shard(index)
            expected = multi_source_nodes_within_hops(kb, owned, halo_hops) | set(owned)
            assert set(image.node_ids()) == expected
            # every edge between halo nodes is present (induced subgraph)
            for edge in kb.edges():
                if edge.source in expected and edge.target in expected:
                    assert image.has_edge(edge.source, edge.target, edge.label)

    def test_images_are_frozen_read_only(self, kb):
        shards = ShardedStore.build(kb, num_shards=2, halo_hops=1)
        image = shards.shard(0)
        assert image.store_backend == "csr"
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            image.add_node("new", "label")

    def test_single_wraps_whole_graph(self, kb):
        store = ShardedStore.single(kb)
        assert store.num_shards == 1
        assert store.owner("anything-at-all") == 0
        assert store.shard(0).node_count() == kb.node_count()
        assert store.shard(0).edge_count() == kb.edge_count()

    def test_build_validates_arguments(self, kb):
        with pytest.raises(PartitionError):
            ShardedStore.build(kb, num_shards=0, halo_hops=1)
        with pytest.raises(PartitionError):
            ShardedStore.build(kb, num_shards=2, halo_hops=1, strategy="metis")

    def test_one_shard_collapses_to_single(self, kb):
        store = ShardedStore.build(kb, num_shards=1, halo_hops=3)
        assert store.strategy == "single"
        assert store.shard(0).node_count() == kb.node_count()


class TestSpool:
    def test_spool_and_load_round_trip(self, kb, tmp_path):
        shards = ShardedStore.build(kb, num_shards=3, halo_hops=2)
        manifest = shards.spool(tmp_path / "spool")
        with open(manifest, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["format"] == "repro-sharded-store"
        assert len(document["shards"]) == 3

        clear_spool_cache()
        reloaded = ShardedStore.load(manifest)
        assert reloaded.num_shards == 3
        assert reloaded.halo_hops == 2
        for index in range(3):
            original = shards.shard(index)
            loaded = reloaded.shard(index)
            assert set(map(str, original.node_ids())) == set(map(str, loaded.node_ids()))
            assert original.edge_count() == loaded.edge_count()

    def test_spool_is_idempotent(self, kb, tmp_path):
        shards = ShardedStore.build(kb, num_shards=2, halo_hops=1)
        first = shards.spool(tmp_path / "spool")
        second = shards.spool(tmp_path / "other")  # already spooled: keeps paths
        assert first == shards.manifest_path or second == shards.manifest_path

    def test_load_rejects_foreign_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(PartitionError):
            ShardedStore.load(path)

    def test_spooled_images_memoize_per_process(self, kb, tmp_path):
        shards = ShardedStore.build(kb, num_shards=2, halo_hops=1)
        shards.spool(tmp_path / "spool")
        clear_spool_cache()
        path = shards._paths[0]
        first = load_spooled(path)
        second = load_spooled(path)
        assert first is second


class TestLocalizedMatchingSupport:
    def test_connected_rules_are_supported(self):
        assert supports_localized_matching(example_rules())

    def test_disconnected_pattern_is_refused(self):
        pattern = Pattern.from_edges(
            "disconnected",
            nodes=[("x", "person"), ("y", "person"), ("z", "city"), ("w", "city")],
            edges=[("x", "y", "knows"), ("z", "w", "near")],
        )
        rule = NGD.from_text(pattern, "", "x.val >= z.val", name="disc")
        assert not supports_localized_matching([rule])
        assert not supports_localized_matching(list(example_rules()) + [rule])


class TestEmptyAndSmall:
    def test_empty_graph_single(self):
        graph = Graph("empty")
        store = ShardedStore.single(graph)
        assert store.shard(0).node_count() == 0

    def test_halo_zero_keeps_fragments_disjoint_plus_borders(self, kb):
        shards = ShardedStore.build(kb, num_shards=2, halo_hops=0)
        total_owned = sum(
            1 for n in kb.node_ids() if shards.owner(n) in (0, 1)
        )
        assert total_owned == kb.node_count()
