"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ngd import NGD, RuleSet
from repro.core.validation import find_violations
from repro.core.violations import ViolationDelta
from repro.detect import inc_dect
from repro.expr.expressions import Add, Divide, Multiply, Subtract, const, var
from repro.expr.literals import Comparison, Literal
from repro.expr.parser import parse_expression
from repro.graph.graph import Graph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.neighborhood import multi_source_nodes_within_hops, nodes_within_hops
from repro.graph.partition import bfs_edge_cut, greedy_vertex_cut, hash_edge_cut
from repro.graph.pattern import Pattern
from repro.graph.updates import BatchUpdate, UpdateGenerator, apply_update


# ----------------------------------------------------------------- strategies

node_labels = st.sampled_from(["person", "city", "thing"])
edge_labels = st.sampled_from(["knows", "likes", "near"])
values = st.integers(min_value=-50, max_value=50)


@st.composite
def small_graphs(draw, max_nodes: int = 8, max_edges: int = 14):
    """A small random labelled graph with integer ``val`` attributes."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    graph = Graph("hyp")
    for index in range(num_nodes):
        graph.add_node(index, draw(node_labels), {"val": draw(values)})
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(num_edges):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        target = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if source != target:
            graph.add_edge(source, target, draw(edge_labels))
    return graph


@st.composite
def linear_expressions(draw, depth: int = 0):
    """Random linear arithmetic expressions over x.val and y.val."""
    if depth >= 3 or draw(st.booleans()):
        return draw(
            st.sampled_from([var("x"), var("y"), const(draw(values))])
        )
    left = draw(linear_expressions(depth=depth + 1))
    right = draw(linear_expressions(depth=depth + 1))
    operator = draw(st.sampled_from(["+", "-", "*c", "/c"]))
    if operator == "+":
        return Add(left, right)
    if operator == "-":
        return Subtract(left, right)
    if operator == "*c":
        return Multiply(const(draw(values)), left)
    return Divide(left, const(draw(st.integers(min_value=1, max_value=9))))


# --------------------------------------------------------------- graph invariants


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_graph_internal_consistency(graph):
    graph.validate_consistency()
    assert graph.node_count() == len(list(graph.nodes()))
    assert graph.edge_count() == len(list(graph.edges()))


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_graph_json_roundtrip(graph):
    assert graph_from_dict(graph_to_dict(graph)) == graph


@settings(max_examples=40, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=3))
def test_neighborhood_monotone_in_hops(graph, hops):
    start = next(iter(graph.node_ids()))
    smaller = nodes_within_hops(graph, start, hops)
    larger = nodes_within_hops(graph, start, hops + 1)
    assert smaller <= larger
    assert start in smaller


@settings(max_examples=40, deadline=None)
@given(small_graphs(), st.integers(min_value=1, max_value=3))
def test_multi_source_bfs_equals_union(graph, hops):
    sources = list(graph.node_ids())[:3]
    union = frozenset().union(*[nodes_within_hops(graph, s, hops) for s in sources])
    assert multi_source_nodes_within_hops(graph, sources, hops) == union


@settings(max_examples=30, deadline=None)
@given(small_graphs(), st.integers(min_value=1, max_value=4))
def test_partitioners_cover_graph(graph, parts):
    for partitioner in (hash_edge_cut, bfs_edge_cut, greedy_vertex_cut):
        fragmentation = partitioner(graph, parts)
        covered = set()
        for fragment in fragmentation.fragments:
            covered |= fragment.nodes
        assert covered == set(graph.node_ids())
        assert sum(f.edge_count() for f in fragmentation.fragments) == graph.edge_count()


# ----------------------------------------------------------- expression invariants


@settings(max_examples=80, deadline=None)
@given(linear_expressions(), values, values)
def test_linear_coefficients_agree_with_evaluation(expression, x_value, y_value):
    assignment = {("x", "val"): x_value, ("y", "val"): y_value}
    direct = Fraction(expression.evaluate(assignment))
    coefficients, constant = expression.linear_coefficients()
    reconstructed = constant + sum(
        coefficient * Fraction(assignment[key]) for key, coefficient in coefficients.items()
    )
    assert direct == reconstructed


@settings(max_examples=80, deadline=None)
@given(linear_expressions())
def test_generated_expressions_are_linear(expression):
    assert expression.degree() <= 1


@settings(max_examples=80, deadline=None)
@given(linear_expressions(), values, values)
def test_parser_roundtrip_preserves_value(expression, x_value, y_value):
    assignment = {("x", "val"): x_value, ("y", "val"): y_value}
    reparsed = parse_expression(str(expression))
    assert Fraction(reparsed.evaluate(assignment)) == Fraction(expression.evaluate(assignment))


@settings(max_examples=80, deadline=None)
@given(
    linear_expressions(),
    linear_expressions(),
    st.sampled_from(list(Comparison)),
    values,
    values,
)
def test_literal_negation_flips_truth(left, right, comparison, x_value, y_value):
    assignment = {("x", "val"): x_value, ("y", "val"): y_value}
    literal = Literal(left, comparison, right)
    assert literal.evaluate(assignment) != literal.negated().evaluate(assignment)


@settings(max_examples=60, deadline=None)
@given(linear_expressions(), linear_expressions(), values, values)
def test_linear_constraint_normal_form_preserves_truth(left, right, x_value, y_value):
    assignment = {("x", "val"): x_value, ("y", "val"): y_value}
    for comparison in (Comparison.LE, Comparison.LT, Comparison.GE, Comparison.GT, Comparison.EQ):
        literal = Literal(left, comparison, right)
        constraint = literal.to_linear_constraint()
        total = sum(
            coefficient * Fraction(assignment[key]) for key, coefficient in constraint.coefficients
        )
        assert constraint.comparison.holds(total, constraint.bound) == literal.evaluate(assignment)


# --------------------------------------------------------- detection invariants


@st.composite
def graphs_and_updates(draw):
    graph = draw(small_graphs(max_nodes=7, max_edges=12))
    generator = UpdateGenerator(seed=draw(st.integers(min_value=0, max_value=1000)))
    size = draw(st.integers(min_value=0, max_value=8))
    ratio = draw(st.sampled_from([0.0, 0.5, 1.0]))
    delta = generator.generate(graph, size, insert_ratio=ratio)
    return graph, delta


_RULE = NGD.from_text(
    Pattern.from_edges(
        "hyp_rule", nodes=[("x", "person"), ("y", "person")], edges=[("x", "y", "knows")]
    ),
    "",
    "x.val <= y.val",
    name="hyp_order",
)


@settings(max_examples=50, deadline=None)
@given(graphs_and_updates())
def test_incremental_detection_matches_recomputation(data):
    graph, delta = data
    rules = RuleSet([_RULE])
    before = find_violations(graph, rules)
    after = find_violations(apply_update(graph, delta), rules)
    expected = ViolationDelta.from_sets(before, after)
    assert inc_dect(graph, rules, delta).delta == expected


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_violations_shrink_when_offending_edges_removed(graph):
    rules = RuleSet([_RULE])
    violations = find_violations(graph, rules)
    if not violations:
        return
    victim = next(iter(violations))
    mapping = victim.mapping()
    delta = BatchUpdate().delete(mapping["x"], mapping["y"], "knows")
    updated = apply_update(graph, delta)
    assert len(find_violations(updated, rules)) < len(violations)
