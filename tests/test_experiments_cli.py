"""Tests for the experiment harness, reporting, and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g2, figure1_g4
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    build_dataset,
    experiment_scale,
    format_series,
    run_exp1_vary_delta,
    run_exp3_vary_diameter,
    run_exp4_vary_processors,
    run_exp5_effectiveness,
    speedup_summary,
)
from repro.experiments.runner import ExperimentSeries
from repro.graph.io import save_graph, save_update
from repro.graph.updates import BatchUpdate


#: Tiny configuration so harness tests stay fast.
TINY = ExperimentConfig(rules_count=6, max_diameter=3, processors=4, scale=0.08, seed=1)


class TestConfig:
    def test_experiment_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert experiment_scale() == 2.5
        monkeypatch.setenv("REPRO_SCALE", "junk")
        with pytest.raises(ExperimentError):
            experiment_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ExperimentError):
            experiment_scale()

    def test_build_dataset_names(self):
        for name in ("DBpedia", "YAGO2", "Pokec", "Synthetic"):
            graph = build_dataset(name, scale=0.05)
            assert graph.node_count() > 0
        with pytest.raises(ExperimentError):
            build_dataset("Freebase")

    def test_config_scaled_override(self):
        config = ExperimentConfig()
        assert config.scaled(processors=20).processors == 20
        assert config.scaled(processors=20).rules_count == config.rules_count


class TestRunners:
    def test_exp1_shapes(self):
        series = run_exp1_vary_delta(
            "YAGO2",
            delta_fractions=(0.05, 0.25),
            config=TINY,
            algorithms=("Dect", "IncDect", "PIncDect"),
        )
        assert set(series.algorithms()) == {"Dect", "IncDect", "PIncDect"}
        # batch cost is flat across update sizes; incremental grows
        assert series.values[0.05]["Dect"] == series.values[0.25]["Dect"]
        assert series.values[0.05]["IncDect"] <= series.values[0.25]["IncDect"]
        # incremental beats batch at 5% updates
        assert series.values[0.05]["IncDect"] < series.values[0.05]["Dect"]
        # the parallel incremental algorithm beats the sequential one
        assert series.values[0.05]["PIncDect"] < series.values[0.05]["IncDect"]

    def test_exp4_processor_scaling(self):
        series = run_exp4_vary_processors(
            "YAGO2", processor_counts=(4, 16), config=TINY, algorithms=("PIncDect",)
        )
        assert series.values[16]["PIncDect"] < series.values[4]["PIncDect"]

    def test_exp3_diameter_monotonicity(self):
        series = run_exp3_vary_diameter(
            "YAGO2", diameters=(2, 4), config=TINY, algorithms=("IncDect",)
        )
        assert series.values[2]["IncDect"] <= series.values[4]["IncDect"]

    def test_exp5_effectiveness_reports_figure1_and_kb(self):
        series = run_exp5_effectiveness(config=TINY)
        assert series.values["Figure1-G2"]["violations"] == 1.0
        for dataset in ("DBpedia", "YAGO2", "Pokec"):
            assert series.values[dataset]["violations"] >= 0
            assert 0.0 <= series.values[dataset]["numeric_share"] <= 1.0

    def test_series_helpers(self):
        series = ExperimentSeries(title="t", x_label="x")
        series.values[1] = {"A": 10.0, "B": 5.0}
        series.values[2] = {"A": 20.0, "B": 5.0}
        assert series.algorithms() == ["A", "B"]
        assert series.series("A") == [(1, 10.0), (2, 20.0)]
        assert series.speedup("A", "B") == {1: 2.0, 2: 4.0}
        table = format_series(series)
        assert "A" in table and "B" in table and "t" in table
        summary = speedup_summary(series, "A", "B")
        assert "mean" in summary


class TestCLI:
    """Basic drive-through of the subcommand CLI (details in tests/test_cli.py).

    Exit codes are stable: 0 = clean, 1 = violations found, 2 = usage error.
    """

    def test_batch_mode(self, tmp_path, capsys):
        graph_path = tmp_path / "g4.json"
        save_graph(figure1_g4(), graph_path)
        assert cli_main(["run", str(graph_path)]) == 1
        output = capsys.readouterr().out
        assert "Dect: 1 violations" in output
        assert "phi4" in output

    def test_incremental_mode(self, tmp_path, capsys):
        graph_path = tmp_path / "g4.json"
        update_path = tmp_path / "delta.json"
        save_graph(figure1_g4(), graph_path)
        save_update(BatchUpdate().delete("NatWest Help", "NatWest Help/status", "status"), update_path)
        assert cli_main(["incremental", str(graph_path), "--update", str(update_path)]) == 1
        output = capsys.readouterr().out
        assert "IncDect" in output
        assert "-1 violations" in output or "/ -1" in output

    def test_parallel_incremental_mode(self, tmp_path, capsys):
        graph_path = tmp_path / "g2.json"
        update_path = tmp_path / "delta.json"
        save_graph(figure1_g2(), graph_path)
        save_update(BatchUpdate().delete("Bhonpur", "total", "populationTotal"), update_path)
        exit_code = cli_main(
            ["incremental", str(graph_path), "--update", str(update_path), "--processors", "4"]
        )
        assert exit_code == 1
        assert "PIncDect" in capsys.readouterr().out

    def test_effectiveness_rule_choice(self, tmp_path, capsys):
        graph_path = tmp_path / "g2.json"
        save_graph(figure1_g2(), graph_path)
        assert cli_main(["run", str(graph_path), "--rules", "effectiveness"]) == 0
        assert "0 violations" in capsys.readouterr().out
