"""The match-planner parity suite and the plan compiler's unit tests.

Contract of the compile-then-execute refactor: for every dataset rule set,
every storage backend (the two legacy engines plus the frozen CSR store) and
every kernel, planner-executed detection yields **byte-identical**
``ViolationSet``s and deterministic costs compared to the pre-plan matcher,
which stays reachable via ``REPRO_MATCH_PLANNER=off`` /
``DetectionOptions(use_planner=False)`` as the oracle.
"""

from __future__ import annotations

import json

import pytest

from repro.core.builtin_rules import example_rules
from repro.core.ngd import NGD
from repro.datasets.figure1 import figure1_g1, figure1_g2
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect.session import DetectionOptions, Detector
from repro.graph.graph import WILDCARD, Graph
from repro.graph.pattern import Pattern
from repro.graph.updates import UpdateGenerator, apply_update
from repro.matching.candidates import MatchStatistics
from repro.matching.matchn import HomomorphismMatcher
from repro.matching.plan import (
    PLANNER_ENV,
    GraphStatistics,
    compile_plan,
    compile_plans,
    format_plan,
    planner_enabled,
)

BACKENDS = ("dict", "indexed", "csr")


def _kb_graph(store=None) -> Graph:
    config = KBConfig(
        name="plans",
        num_entities=90,
        num_entity_types=4,
        num_value_relations=3,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=1.0,
        seed=13,
    )
    return knowledge_graph(config, store=store)


def _kb_rules(graph: Graph):
    return benchmark_rules(graph, count=6, max_diameter=3, seed=0)


def _detector(rules, planner: bool, engine="batch", processors=None, **extra) -> Detector:
    options = DetectionOptions(use_planner=planner, **extra)
    return Detector(rules, engine=engine, processors=processors, options=options)


# ------------------------------------------------------------------- compiler


class TestPlanCompiler:
    def test_order_starts_from_rarest_label(self):
        graph = Graph()
        for index in range(50):
            graph.add_node(f"c{index}", "common", {"val": index})
        graph.add_node("r", "rare", {"val": 1})
        for index in range(50):
            graph.add_edge(f"c{index}", "r", "points")
        pattern = Pattern.from_edges(
            "Q", nodes=[("x", "common"), ("y", "rare")], edges=[("x", "y", "points")]
        )
        rule = NGD.from_text(pattern, "", "x.val < y.val", name="r")
        plan = compile_plan(graph, rule)
        # static order starts at x (declaration order); the planner starts at
        # the rare label and anchors the common side through the index
        assert plan.order == ("y", "x")
        assert plan.steps[0].strategy == "scan"
        assert plan.steps[1].strategy == "anchored"
        assert plan.steps[1].anchors[0].variable == "y"

    def test_plans_identical_across_backends(self):
        base = _kb_graph()
        rules = _kb_rules(base)
        reference = [plan.to_dict() for plan in compile_plans(base, rules)]
        for backend in BACKENDS:
            converted = base.with_backend(backend)
            assert [p.to_dict() for p in compile_plans(converted, rules)] == reference

    def test_literal_schedule_fires_each_premise_literal_once(self):
        graph = _kb_graph()
        for plan in compile_plans(graph, _kb_rules(graph)):
            scheduled = [
                index
                for step in plan.steps
                for index in (*step.unary_premise, *step.premise_checks)
            ]
            assert sorted(scheduled) == list(range(len(plan.rule.premise.literals())))
            assert len(set(scheduled)) == len(scheduled)
            # the conclusion check appears at most once, at the step where a
            # single-literal conclusion is fully bound
            assert sum(step.check_conclusion for step in plan.steps) <= 1

    def test_seeded_order_keeps_seed_first(self):
        graph = _kb_graph()
        rules = _kb_rules(graph)
        plan = compile_plans(graph, rules)[0]
        variables = plan.rule.pattern.variables
        seed = (variables[1], variables[0])
        order = plan.order_for_seed(seed)
        assert order[:2] == seed
        assert sorted(order) == sorted(variables)
        schedule = plan.schedule_for(order)
        assert tuple(step.variable for step in schedule) == order

    def test_statistics_snapshot(self):
        graph = figure1_g2()
        stats = GraphStatistics.from_graph(graph)
        assert stats.node_count == graph.node_count()
        assert stats.edge_count == graph.edge_count()
        assert stats.label_cardinality(WILDCARD) == graph.node_count()
        assert sum(stats.edge_label_counts.values()) == graph.edge_count()

    def test_format_plan_mentions_every_variable(self):
        graph = figure1_g2()
        for plan in compile_plans(graph, example_rules()):
            rendered = format_plan(plan)
            for variable in plan.rule.pattern.variables:
                assert f" {variable}:" in rendered

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert planner_enabled()
        for value in ("off", "0", "false", "NO"):
            monkeypatch.setenv(PLANNER_ENV, value)
            assert not planner_enabled()
        monkeypatch.setenv(PLANNER_ENV, "on")
        assert planner_enabled()


# ------------------------------------------------------------- oracle parity


@pytest.mark.parametrize("backend", BACKENDS)
class TestPlannerOracleParity:
    """Planner on vs the pre-plan oracle, on every storage backend."""

    def test_batch_violations_byte_identical(self, backend):
        base = _kb_graph()
        rules = _kb_rules(base)
        graph = base.with_backend(backend)
        planned = _detector(rules, True).run(graph)
        oracle = _detector(rules, False).run(graph)
        assert planned.violations.to_json() == oracle.violations.to_json()
        assert planned.violations.to_json() == _detector(rules, False).run(base).violations.to_json()

    def test_figure1_rules_byte_identical(self, backend):
        for build in (figure1_g1, figure1_g2):
            graph = build().with_backend(backend)
            planned = _detector(example_rules(), True).run(graph)
            oracle = _detector(example_rules(), False).run(graph)
            assert planned.violations.to_json() == oracle.violations.to_json()

    def test_parallel_batch_matches_sequential(self, backend):
        base = _kb_graph()
        rules = _kb_rules(base)
        graph = base.with_backend(backend)
        planned = _detector(rules, True, engine="parallel", processors=4).run(graph)
        sequential = _detector(rules, True).run(graph)
        assert planned.violations.to_json() == sequential.violations.to_json()

    def test_costs_deterministic_across_repeated_runs(self, backend):
        base = _kb_graph()
        rules = _kb_rules(base)
        graph = base.with_backend(backend)
        outcomes = set()
        for _ in range(2):
            result = _detector(rules, True).run(graph)
            outcomes.add((result.cost, result.stats.total_operations()))
        assert len(outcomes) == 1

    def test_costs_identical_across_backends(self, backend):
        base = _kb_graph()
        rules = _kb_rules(base)
        reference = _detector(rules, True).run(base.with_backend("dict"))
        result = _detector(rules, True).run(base.with_backend(backend))
        assert result.cost == reference.cost
        assert result.stats.total_operations() == reference.stats.total_operations()


class TestIncrementalPlannerParity:
    """ΔVio parity planner on/off (the CSR store is frozen, so the two
    mutable engines carry the incremental legs)."""

    @pytest.mark.parametrize("backend", ("dict", "indexed"))
    @pytest.mark.parametrize("engine,processors", [("incremental", None), ("parallel", 4)])
    def test_delta_byte_identical(self, backend, engine, processors):
        base = _kb_graph(store=backend)
        rules = _kb_rules(base)
        delta = UpdateGenerator(seed=23).generate(base, size=max(1, base.edge_count() // 8))
        updated = apply_update(base, delta)
        planned = _detector(rules, True, engine=engine, processors=processors).run_incremental(
            base, delta, graph_after=updated
        )
        oracle = _detector(rules, False, engine=engine, processors=processors).run_incremental(
            base, delta, graph_after=updated
        )
        assert planned.introduced().to_json() == oracle.introduced().to_json()
        assert planned.removed().to_json() == oracle.removed().to_json()

    def test_restricted_neighborhood_matches_batch_diff(self):
        base = _kb_graph()
        rules = _kb_rules(base)
        delta = UpdateGenerator(seed=5).generate(base, size=max(1, base.edge_count() // 10))
        planned = _detector(
            rules, True, engine="incremental", restrict_to_neighborhood=True
        ).run_incremental(base, delta)
        oracle = _detector(rules, False, engine="batch").run_incremental(base, delta)
        assert planned.introduced().to_json() == oracle.introduced().to_json()
        assert planned.removed().to_json() == oracle.removed().to_json()


# ----------------------------------------------------------- planner benefits


class TestPlannerWins:
    def test_planned_ordering_beats_static_on_skewed_labels(self):
        """The acceptance workload: skewed label cardinalities.

        A pattern declared common-side-first forces the static order to scan
        the big label bucket; the planner starts from the rare side.
        """
        graph = Graph()
        for index in range(400):
            graph.add_node(f"acct{index}", "account", {"val": index % 37})
        for index in range(8):
            graph.add_node(f"flag{index}", "flag", {"val": index})
        for index in range(0, 400, 25):
            graph.add_edge(f"acct{index}", f"flag{(index // 25) % 8}", "flagged")
        pattern = Pattern.from_edges(
            "skew", nodes=[("x", "account"), ("y", "flag")], edges=[("x", "y", "flagged")]
        )
        rules = [NGD.from_text(pattern, "x.val >= 0", "y.val < x.val", name="skew_rule")]
        planned = _detector(rules, True).run(graph)
        static = _detector(rules, False).run(graph)
        assert planned.violations.to_json() == static.violations.to_json()
        ratio = static.stats.total_operations() / max(1, planned.stats.total_operations())
        assert ratio >= 1.5, f"planned ordering only {ratio:.2f}x better"

    def test_matcher_executes_plan_directly(self):
        graph = _kb_graph()
        rules = _kb_rules(graph)
        rule = rules[0]
        plan = compile_plan(graph, rule)
        planned_stats = MatchStatistics()
        static_stats = MatchStatistics()
        planned = list(
            HomomorphismMatcher(
                graph, rule.pattern, premise=rule.premise, conclusion=rule.conclusion,
                stats=planned_stats, plan=plan,
            ).violations()
        )
        static = list(
            HomomorphismMatcher(
                graph, rule.pattern, premise=rule.premise, conclusion=rule.conclusion,
                stats=static_stats,
            ).violations()
        )
        assert sorted(planned, key=repr) == sorted(static, key=repr)


# --------------------------------------------------------------- plan caching


class TestSessionPlanCache:
    def test_same_snapshot_compiles_once(self):
        graph = _kb_graph()
        rules = _kb_rules(graph)
        detector = _detector(rules, True)
        first = detector.compile_plans(graph)
        second = detector.compile_plans(graph)
        assert first is second
        detector.clear_plan_cache()
        assert detector.compile_plans(graph) is not first

    def test_planner_off_compiles_nothing(self):
        graph = _kb_graph()
        detector = _detector(_kb_rules(graph), False)
        assert detector.compile_plans(graph) is None

    def test_explicit_plans_override(self):
        graph = _kb_graph()
        rules = _kb_rules(graph)
        detector = _detector(rules, True)
        plans = detector.compile_plans(graph)
        result = detector.run(graph, plans=plans)
        assert result.violations.to_json() == _detector(rules, True).run(graph).violations.to_json()


# ----------------------------------------------------------------- CLI explain


class TestExplainCli:
    def _graph_file(self, tmp_path):
        from repro.graph.io import save_graph

        path = tmp_path / "g.json"
        save_graph(figure1_g2(), path)
        return str(path)

    def test_text_output(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["explain", self._graph_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "match plans for" in out
        assert "phi2" in out and "anchored intersection" in out

    def test_json_output_lists_every_rule(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["explain", self._graph_file(tmp_path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [p["rule"] for p in document["plans"]] == [r.name for r in example_rules()]
        for plan in document["plans"]:
            assert plan["order"]
            assert all("strategy" in step for step in plan["steps"])
