"""Unit tests for the property-graph substrate: Graph, Node, Edge, Pattern."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateNode, EdgeNotFound, GraphError, NodeNotFound, PatternError
from repro.graph.graph import WILDCARD, Graph, Node
from repro.graph.pattern import Pattern


class TestNode:
    def test_attribute_lookup(self):
        node = Node("n1", "person", {"age": 30})
        assert node.attribute("age") == 30
        assert node.attribute("missing") is None
        assert node.attribute("missing", 7) == 7

    def test_has_attribute(self):
        node = Node("n1", "person", {"age": 30})
        assert node.has_attribute("age")
        assert not node.has_attribute("name")

    def test_with_attribute_returns_new_node(self):
        node = Node("n1", "person", {"age": 30})
        updated = node.with_attribute("age", 31)
        assert updated.attribute("age") == 31
        assert node.attribute("age") == 30


class TestGraphNodes:
    def test_add_and_get_node(self):
        graph = Graph()
        graph.add_node("a", "person", {"val": 1})
        assert graph.node("a").label == "person"
        assert graph.has_node("a")
        assert len(graph) == 1

    def test_add_duplicate_identical_is_noop(self):
        graph = Graph()
        graph.add_node("a", "person", {"val": 1})
        graph.add_node("a", "person", {"val": 1})
        assert graph.node_count() == 1

    def test_add_duplicate_conflicting_raises(self):
        graph = Graph()
        graph.add_node("a", "person")
        with pytest.raises(DuplicateNode):
            graph.add_node("a", "city")

    def test_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFound):
            graph.node("ghost")

    def test_ensure_node_creates_once(self):
        graph = Graph()
        first = graph.ensure_node("a", "person")
        second = graph.ensure_node("a")
        assert first == second
        assert graph.node_count() == 1

    def test_label_index(self):
        graph = Graph()
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_node("c", "city")
        assert graph.nodes_with_label("person") == frozenset({"a", "b"})
        assert graph.nodes_with_label("city") == frozenset({"c"})
        assert graph.nodes_with_label("missing") == frozenset()

    def test_wildcard_label_returns_all_nodes(self):
        graph = Graph()
        graph.add_node("a", "person")
        graph.add_node("b", "city")
        assert graph.nodes_with_label(WILDCARD) == frozenset({"a", "b"})

    def test_set_attribute(self):
        graph = Graph()
        graph.add_node("a", "person", {"val": 1})
        graph.set_attribute("a", "val", 2)
        assert graph.node("a").attribute("val") == 2

    def test_remove_node_removes_incident_edges(self):
        graph = Graph()
        graph.add_node("a", "x")
        graph.add_node("b", "x")
        graph.add_edge("a", "b", "e")
        graph.add_edge("b", "a", "e")
        graph.remove_node("a")
        assert not graph.has_node("a")
        assert graph.edge_count() == 0
        graph.validate_consistency()


class TestGraphEdges:
    def test_add_edge_requires_nodes(self):
        graph = Graph()
        graph.add_node("a", "x")
        with pytest.raises(NodeNotFound):
            graph.add_edge("a", "missing", "e")

    def test_add_edge_and_lookup(self, triangle_graph):
        assert triangle_graph.has_edge("a", "b", "knows")
        assert triangle_graph.has_edge("a", "b")
        assert not triangle_graph.has_edge("b", "a", "knows")
        edge = triangle_graph.edge("a", "b", "knows")
        assert edge.endpoints() == ("a", "b")

    def test_parallel_edges_different_labels(self):
        graph = Graph()
        graph.add_node("a", "x")
        graph.add_node("b", "x")
        graph.add_edge("a", "b", "e1")
        graph.add_edge("a", "b", "e2")
        assert graph.edge_count() == 2

    def test_duplicate_edge_is_noop(self, triangle_graph):
        before = triangle_graph.edge_count()
        triangle_graph.add_edge("a", "b", "knows")
        assert triangle_graph.edge_count() == before

    def test_remove_missing_edge_raises(self, triangle_graph):
        with pytest.raises(EdgeNotFound):
            triangle_graph.remove_edge("a", "b", "likes")

    def test_edges_with_signature(self, triangle_graph):
        edges = triangle_graph.edges_with_signature("person", "knows", "person")
        assert len(edges) == 1
        assert edges[0].source == "a"

    def test_edges_with_signature_wildcards(self, triangle_graph):
        edges = triangle_graph.edges_with_signature(WILDCARD, "lives_in", "city")
        assert {e.source for e in edges} == {"a", "b"}

    def test_signature_index_follows_removal(self, triangle_graph):
        triangle_graph.remove_edge("a", "b", "knows")
        assert triangle_graph.edges_with_signature("person", "knows", "person") == []
        triangle_graph.validate_consistency()


class TestGraphAdjacencyAndStats:
    def test_successors_and_predecessors(self, triangle_graph):
        assert ("b", "knows") in triangle_graph.successors("a")
        assert ("a", "knows") in triangle_graph.predecessors("b")

    def test_neighbours_ignore_direction(self, triangle_graph):
        assert triangle_graph.neighbours("c") == frozenset({"a", "b"})

    def test_degree(self, triangle_graph):
        assert triangle_graph.degree("a") == 2
        assert triangle_graph.degree("c") == 2

    def test_density_and_average_degree(self, triangle_graph):
        assert triangle_graph.density() == pytest.approx(3 / (3 * 2))
        assert triangle_graph.average_degree() == pytest.approx(2.0)

    def test_total_size(self, triangle_graph):
        assert triangle_graph.total_size() == 6

    def test_labels(self, triangle_graph):
        assert triangle_graph.labels() == frozenset({"person", "city"})
        assert triangle_graph.edge_labels() == frozenset({"knows", "lives_in"})


class TestSubgraphs:
    def test_induced_subgraph(self, triangle_graph):
        sub = triangle_graph.induced_subgraph(["a", "b"])
        assert sub.node_count() == 2
        assert sub.edge_count() == 1
        assert sub.has_edge("a", "b", "knows")

    def test_induced_subgraph_missing_node(self, triangle_graph):
        with pytest.raises(NodeNotFound):
            triangle_graph.induced_subgraph(["a", "ghost"])

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_edge("a", "b", "knows")
        assert triangle_graph.has_edge("a", "b", "knows")
        assert not clone.has_edge("a", "b", "knows")

    def test_is_subgraph_of(self, triangle_graph):
        sub = triangle_graph.induced_subgraph(["a", "b"])
        assert sub.is_subgraph_of(triangle_graph)
        assert not triangle_graph.is_subgraph_of(sub)

    def test_graph_equality(self, triangle_graph):
        assert triangle_graph == triangle_graph.copy()
        other = triangle_graph.copy()
        other.set_attribute("a", "val", 99)
        assert triangle_graph != other


class TestPattern:
    def test_variables_in_order(self, knows_pattern):
        assert knows_pattern.variables == ("x", "y")

    def test_duplicate_variable_conflicting_label(self):
        pattern = Pattern()
        pattern.add_node("x", "person")
        with pytest.raises(PatternError):
            pattern.add_node("x", "city")

    def test_edge_requires_variables(self):
        pattern = Pattern()
        pattern.add_node("x", "person")
        with pytest.raises(PatternError):
            pattern.add_edge("x", "y", "knows")

    def test_wildcard_matches_any_label(self):
        pattern = Pattern()
        node = pattern.add_node("x", WILDCARD)
        assert node.matches_label("anything")

    def test_neighbours_and_incident_edges(self, knows_pattern):
        assert knows_pattern.neighbours("x") == frozenset({"y"})
        assert len(knows_pattern.incident_edges("x")) == 1

    def test_connectivity(self):
        pattern = Pattern.from_edges(
            "p", nodes=[("a", "x"), ("b", "x"), ("c", "x")], edges=[("a", "b", "e")]
        )
        assert not pattern.is_connected()
        assert len(pattern.connected_components()) == 2

    def test_diameter_of_chain(self):
        pattern = Pattern.from_edges(
            "chain",
            nodes=[("a", "x"), ("b", "x"), ("c", "x"), ("d", "x")],
            edges=[("a", "b", "e"), ("b", "c", "e"), ("c", "d", "e")],
        )
        assert pattern.diameter() == 3

    def test_diameter_single_node(self):
        pattern = Pattern.from_edges("single", nodes=[("a", "x")])
        assert pattern.diameter() == 0

    def test_matching_order_is_connected(self):
        pattern = Pattern.from_edges(
            "star",
            nodes=[("hub", "x"), ("l1", "y"), ("l2", "y"), ("l3", "y")],
            edges=[("hub", "l1", "e"), ("hub", "l2", "e"), ("hub", "l3", "e")],
        )
        order = pattern.matching_order(seed=["l1"])
        assert order[0] == "l1"
        assert set(order) == {"hub", "l1", "l2", "l3"}
        # every later variable must be adjacent to some earlier one
        for index in range(1, len(order)):
            assert pattern.neighbours(order[index]) & set(order[:index])

    def test_matching_order_unknown_seed(self, knows_pattern):
        with pytest.raises(PatternError):
            knows_pattern.matching_order(seed=["ghost"])

    def test_to_graph_roundtrip(self, knows_pattern):
        graph = knows_pattern.to_graph()
        assert graph.node_count() == 2
        assert graph.has_edge("x", "y", "knows")

    def test_pattern_equality_and_hash(self):
        p1 = Pattern.from_edges("a", nodes=[("x", "t")], edges=[])
        p2 = Pattern.from_edges("b", nodes=[("x", "t")], edges=[])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_qx_patterns_from_paper_have_expected_diameters(self):
        from repro.core.builtin_rules import pattern_q1, pattern_q2, pattern_q3, pattern_q4

        assert pattern_q1().diameter() == 2
        assert pattern_q2().diameter() == 2
        # in Q3/Q4 the value nodes of the two entities are four hops apart
        assert pattern_q3().diameter() == 4
        assert pattern_q4().diameter() == 4
