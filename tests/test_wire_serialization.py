"""Round-trip tests for the violation wire format (core/violations.py).

The same ``to_dict``/``from_dict`` forms are consumed by the service
protocol (NDJSON streams, session state documents) and the CLI's
``--format json`` payload, so the round-trip guarantees here underwrite
both surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import result_to_dict
from repro.core.violations import Violation, ViolationDelta, ViolationSet, wire_node_id
from repro.detect import Detector
from repro.errors import SerializationError


def _violation(rule: str = "phi2", suffix: str = "") -> Violation:
    return Violation(
        rule,
        ("x", "y", "z", "w"),
        (f"Bhonpur{suffix}", f"female{suffix}", f"male{suffix}", f"total{suffix}"),
    )


class TestWireNodeId:
    def test_json_scalars_pass_through(self):
        for value in ("a", 7, 3.5, True, None):
            assert wire_node_id(value) == value

    def test_non_json_ids_use_the_io_convention(self):
        # graph/io.save_graph serialises unknown types with json default=str;
        # the violation wire form must name the same ids a graph file would
        assert wire_node_id(("p", 3)) == str(("p", 3))
        assert wire_node_id(frozenset({1})) == str(frozenset({1}))


class TestViolationRoundTrip:
    def test_to_dict_shape(self):
        document = _violation().to_dict()
        assert document == {
            "rule": "phi2",
            "variables": ["x", "y", "z", "w"],
            "nodes": ["Bhonpur", "female", "male", "total"],
        }
        # the document is pure JSON
        json.dumps(document)

    def test_round_trip_identity(self):
        violation = _violation()
        assert Violation.from_dict(violation.to_dict()) == violation

    def test_round_trip_through_json_text(self):
        violation = _violation()
        rebuilt = Violation.from_dict(json.loads(json.dumps(violation.to_dict())))
        assert rebuilt == violation
        assert rebuilt.mapping() == violation.mapping()

    def test_tuple_node_ids_serialize_via_str(self):
        violation = Violation("r", ("x",), (("composite", 1),))
        document = violation.to_dict()
        assert document["nodes"] == [str(("composite", 1))]
        # lossy by design: the rebuilt violation carries the string form
        assert Violation.from_dict(document).nodes == (str(("composite", 1)),)

    @pytest.mark.parametrize(
        "document",
        [
            "not a mapping",
            {},
            {"rule": "r", "variables": ["x"]},
            {"rule": 7, "variables": ["x"], "nodes": ["a"]},
            {"rule": "r", "variables": "x", "nodes": ["a"]},
            {"rule": "r", "variables": ["x", "y"], "nodes": ["a"]},
        ],
    )
    def test_malformed_documents_raise(self, document):
        with pytest.raises(SerializationError):
            Violation.from_dict(document)


class TestViolationSetRoundTrip:
    def test_json_round_trip(self):
        violations = ViolationSet([_violation(), _violation(suffix="2"), _violation("phi1")])
        assert ViolationSet.from_json(violations.to_json()) == violations

    def test_to_dict_is_sorted_and_deterministic(self):
        violations = ViolationSet([_violation(suffix="2"), _violation()])
        listed = violations.to_dict()["violations"]
        assert [v["nodes"][0] for v in listed] == ["Bhonpur", "Bhonpur2"]
        assert violations.to_json() == ViolationSet(list(violations)).to_json()

    def test_empty_set_round_trips(self):
        assert ViolationSet.from_json(ViolationSet().to_json()) == ViolationSet()

    def test_malformed_json_raises(self):
        with pytest.raises(SerializationError):
            ViolationSet.from_json("{nope")
        with pytest.raises(SerializationError):
            ViolationSet.from_dict({"violations": "not-a-list"})


class TestViolationDeltaRoundTrip:
    def test_round_trip(self):
        delta = ViolationDelta(
            introduced=ViolationSet([_violation()]),
            removed=ViolationSet([_violation(suffix="2"), _violation("phi3")]),
        )
        assert ViolationDelta.from_dict(delta.to_dict()) == delta

    def test_empty_delta_round_trips(self):
        assert ViolationDelta.from_dict(ViolationDelta.empty().to_dict()) == ViolationDelta.empty()

    def test_missing_key_raises(self):
        with pytest.raises(SerializationError):
            ViolationDelta.from_dict({"introduced": []})


class TestCliPayloadReuse:
    """The CLI ``--format json`` violation entries are the wire form + assignment."""

    def test_run_payload_uses_wire_form(self, g2, figure1_rules):
        result = Detector(figure1_rules).run(g2)
        document = result_to_dict(result)
        assert document["violation_count"] == 1
        (entry,) = document["violations"]
        wire = dict(entry)
        assignment = wire.pop("assignment")
        rebuilt = Violation.from_dict(wire)
        assert rebuilt in result.violations
        assert assignment == {v: n for v, n in zip(entry["variables"], entry["nodes"])}
