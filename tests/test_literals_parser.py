"""Unit tests for comparison literals, literal sets, and the text parser."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ExpressionError, ParseError
from repro.expr.expressions import const, var
from repro.expr.literals import Comparison, Literal, LiteralSet
from repro.expr.parser import parse_expression, parse_literal, parse_literal_set


class TestComparison:
    def test_holds(self):
        assert Comparison.LE.holds(3, 3)
        assert Comparison.LT.holds(2, 3)
        assert not Comparison.GT.holds(2, 3)
        assert Comparison.NE.holds("a", "b")

    def test_negate_is_involution(self):
        for predicate in Comparison:
            assert predicate.negate().negate() is predicate

    def test_negate_pairs(self):
        assert Comparison.EQ.negate() is Comparison.NE
        assert Comparison.LT.negate() is Comparison.GE
        assert Comparison.LE.negate() is Comparison.GT

    def test_flip(self):
        assert Comparison.LT.flip() is Comparison.GT
        assert Comparison.EQ.flip() is Comparison.EQ

    def test_from_symbol_aliases(self):
        assert Comparison.from_symbol("==") is Comparison.EQ
        assert Comparison.from_symbol("≠") is Comparison.NE
        assert Comparison.from_symbol("<=") is Comparison.LE
        with pytest.raises(ExpressionError):
            Comparison.from_symbol("~")


class TestLiteral:
    def test_build_and_evaluate(self):
        literal = Literal.build("x.val", "<", 10)
        assert literal.evaluate({("x", "val"): 5})
        assert not literal.evaluate({("x", "val"): 15})

    def test_holds_for_missing_attribute_is_false(self):
        literal = Literal.build("x.val", "<", 10)
        assert not literal.holds_for({})

    def test_holds_for_type_mismatch_is_false(self):
        literal = Literal.build("x.val", "<", 10)
        assert not literal.holds_for({("x", "val"): "dirty-string"})

    def test_gfd_fragment_detection(self):
        assert Literal.build("x.val", "=", 5).is_gfd_literal()
        assert Literal.build("x.val", "=", "y.val").is_gfd_literal()
        assert not Literal.build("x.val", "<", 5).is_gfd_literal()
        assert not Literal(var("x") + var("y"), Comparison.EQ, const(1)).is_gfd_literal()

    def test_negated(self):
        literal = Literal.build("x.val", "<", 10)
        assert literal.negated().comparison is Comparison.GE

    def test_variables_and_degree(self):
        literal = Literal(var("x") + var("y", "rank"), Comparison.GT, const(3))
        assert literal.pattern_variables() == frozenset({"x", "y"})
        assert literal.degree() == 1
        assert literal.is_linear()

    def test_to_linear_constraint_normalises_direction(self):
        literal = Literal(var("x"), Comparison.GE, var("y") + 2)
        constraint = literal.to_linear_constraint()
        # x >= y + 2  becomes  -x + y <= -2
        coefficients = dict(constraint.coefficients)
        assert coefficients[("x", "val")] == -1
        assert coefficients[("y", "val")] == 1
        assert constraint.comparison is Comparison.LE
        assert constraint.bound == Fraction(-2)

    def test_to_linear_constraint_rejects_nonlinear(self):
        literal = Literal(var("x") * var("y"), Comparison.EQ, const(0))
        with pytest.raises(ExpressionError):
            literal.to_linear_constraint()


class TestLiteralSet:
    def test_empty_set_is_trivially_true(self):
        literals = LiteralSet()
        assert not literals
        assert literals.satisfied_by({})
        assert str(literals) == "∅"

    def test_conjunction_semantics(self):
        literals = LiteralSet.of(Literal.build("x.val", ">", 0), Literal.build("x.val", "<", 10))
        assert literals.satisfied_by({("x", "val"): 5})
        assert not literals.satisfied_by({("x", "val"): 50})

    def test_missing_attribute_fails_conjunction(self):
        literals = LiteralSet.of(Literal.build("x.val", ">", 0))
        assert not literals.satisfied_by({})

    def test_variables_union(self):
        literals = LiteralSet.of(Literal.build("x.a", "=", 1), Literal.build("y.b", "=", 2))
        assert literals.pattern_variables() == frozenset({"x", "y"})

    def test_restricted_to(self):
        literals = LiteralSet.of(Literal.build("x.a", "=", 1), Literal.build("y.b", "=", 2))
        restricted = literals.restricted_to(frozenset({"x"}))
        assert len(restricted) == 1

    def test_add_returns_new_set(self):
        literals = LiteralSet()
        extended = literals.add(Literal.build("x.a", "=", 1))
        assert len(literals) == 0
        assert len(extended) == 1


class TestParser:
    def test_parse_expression_precedence(self):
        expression = parse_expression("1 + 2 * x.val")
        assert expression.evaluate({("x", "val"): 3}) == 7

    def test_parse_parentheses(self):
        expression = parse_expression("(1 + 2) * x.val")
        assert expression.evaluate({("x", "val"): 3}) == 9

    def test_parse_absolute_value(self):
        expression = parse_expression("|x.val - y.val|")
        assert expression.evaluate({("x", "val"): 1, ("y", "val"): 5}) == 4

    def test_parse_unary_minus(self):
        expression = parse_expression("-x.val + 10")
        assert expression.evaluate({("x", "val"): 4}) == 6

    def test_parse_decimal_number(self):
        expression = parse_expression("x.val * 1.5")
        assert expression.evaluate({("x", "val"): 2}) == 3.0

    def test_parse_literal(self):
        literal = parse_literal("x.val + 3 <= y.val")
        assert literal.comparison is Comparison.LE
        assert literal.evaluate({("x", "val"): 1, ("y", "val"): 4})

    def test_parse_literal_set(self):
        literals = parse_literal_set("x.val = 1, y.val > 2")
        assert len(literals) == 2

    def test_parse_empty_literal_set(self):
        assert len(parse_literal_set("")) == 0
        assert len(parse_literal_set("∅")) == 0

    def test_parse_roundtrip_through_str(self):
        literal = parse_literal("2 * x.val - y.val >= 7")
        reparsed = parse_literal(str(literal).replace("(", "").replace(")", ""))
        assert reparsed.comparison is literal.comparison

    def test_bare_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("x + 1")

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("x.val @ 3")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_literal("x.val = 1 y.val")

    def test_missing_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_literal("x.val + 1")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(x.val + 1")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_expression("x.val + $")
        assert excinfo.value.position == 8
