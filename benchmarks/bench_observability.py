"""Micro-benchmark: full observability costs < 5 % over ``REPRO_OBS=off``.

The observability subsystem instruments every layer the detection hot path
crosses — per-step candidate counters in the match executor, per-rule spans
in the kernels, the run root span in the session.  This benchmark runs the
Exp-2 synthetic workload with observability fully enabled and with the
``REPRO_OBS=off`` no-op stubs, asserts the two runs are byte-identical
(**observe, never steer**), and bounds the relative wall-time overhead.

Run standalone (``python benchmarks/bench_observability.py``) or through
pytest.  ``REPRO_WRITE_BENCH_BASELINE=path`` persists the report JSON —
``benchmarks/BENCH_observability.json`` keeps the committed baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.datasets.rules import benchmark_rules  # noqa: E402
from repro.datasets.synthetic import synthetic_graph  # noqa: E402
from repro.detect import Detector  # noqa: E402

#: Exp-2 synthetic workload (Figure 4(e) shape at laptop scale).
WORKLOAD = {"num_nodes": 16_000, "num_edges": 32_000, "rules_count": 24, "seed": 1}

#: Acceptance bound on the relative overhead of enabled observability.
#: Override with REPRO_OBS_OVERHEAD_BOUND on very noisy machines (shared CI
#: runners); the parity assertions are unconditional either way.
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_OVERHEAD_BOUND", "0.05"))


def _timed(callable_) -> float:
    started = time.perf_counter()
    callable_()
    return time.perf_counter() - started


def measure_overhead(rounds: int = 5) -> dict:
    """Time detection with observability on vs off on the Exp-2 workload.

    Returns the best-of-``rounds`` wall time per configuration, the relative
    ``overhead`` of the instrumented path, and the parity evidence (both
    configurations must produce identical violations and cost).  The two
    configurations alternate round by round and keep their minima, which
    cancels scheduler noise.
    """
    graph = synthetic_graph(
        num_nodes=WORKLOAD["num_nodes"],
        num_edges=WORKLOAD["num_edges"],
        seed=WORKLOAD["seed"],
        name="obs-workload",
    )
    rules = benchmark_rules(graph, count=WORKLOAD["rules_count"], max_diameter=5, seed=0)

    def run():
        return Detector(rules, engine="batch").run(graph)

    obs.configure(True)
    on_result = run()
    obs.configure(False)
    off_result = run()

    on_time = off_time = float("inf")
    try:
        for _ in range(rounds):
            obs.configure(True)
            on_time = min(on_time, _timed(run))
            obs.configure(False)
            off_time = min(off_time, _timed(run))
    finally:
        obs.configure()  # back to the REPRO_OBS-driven default

    return {
        "workload": dict(WORKLOAD),
        "machine": {"cpus": os.cpu_count(), "platform": platform.platform()},
        "obs_on_seconds": round(on_time, 4),
        "obs_off_seconds": round(off_time, 4),
        "overhead": round(on_time / off_time - 1.0, 4),
        "violations": len(on_result.violations),
        "costs_identical": on_result.cost == off_result.cost,
        "violations_identical": (
            on_result.violations.to_json() == off_result.violations.to_json()
        ),
        "trace_recorded": on_result.trace_id is not None,
    }


def test_observability_overhead():
    """Instrumented runs are byte-identical to REPRO_OBS=off and < 5 % slower.

    The timing half retries before failing: the true overhead is a few
    percent at most, so one noisy scheduler burst should not fail the gate,
    while a genuine regression exceeds the bound on every attempt.
    """
    measured = measure_overhead()
    assert measured["costs_identical"], measured
    assert measured["violations_identical"], measured
    assert measured["trace_recorded"], measured
    assert measured["violations"] > 0, "workload must actually produce violations"
    for _ in range(2):
        if measured["overhead"] < MAX_OVERHEAD:
            break
        measured = measure_overhead()
    assert measured["overhead"] < MAX_OVERHEAD, (
        f"observability costs {measured['overhead']:.1%} "
        f"(bound {MAX_OVERHEAD:.0%}): {measured}"
    )


if __name__ == "__main__":
    report = measure_overhead()
    print(json.dumps(report, indent=2, sort_keys=True))
    print(
        f"obs on {report['obs_on_seconds'] * 1000:.1f} ms, "
        f"off {report['obs_off_seconds'] * 1000:.1f} ms, "
        f"overhead {report['overhead']:+.2%} "
        f"({report['violations']} violations)"
    )
    baseline = os.environ.get("REPRO_WRITE_BENCH_BASELINE")
    if baseline:
        with open(baseline, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {baseline}")
