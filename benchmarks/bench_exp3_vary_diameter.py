"""Exp-3 — Figure 4(h): impact of the rule-set diameter dΣ.

The paper varies dΣ from 2 to 6 on DBpedia (‖Σ‖ = 50, |ΔG| = 15%).  Expected
shape: every algorithm takes longer as the patterns get deeper, because the
dΣ-neighbourhoods that incremental detection explores (and the match depth
batch detection enumerates) grow with the diameter.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp3_vary_diameter

DIAMETERS = (2, 3, 4, 5, 6)


@pytest.mark.benchmark(group="exp3-vary-diameter")
def test_fig4h_dbpedia_diameter(benchmark, bench_config):
    series = benchmark.pedantic(
        run_exp3_vary_diameter,
        kwargs={"dataset": "DBpedia", "diameters": DIAMETERS, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print_series(series)
    # incremental detection cost grows with the rule diameter (its search region is the
    # dΣ-neighbourhood of ΔG); batch detection is dominated by per-rule candidate scans,
    # so it is only required not to shrink materially
    assert series.values[6]["IncDect"] >= series.values[2]["IncDect"]
    assert series.values[6]["Dect"] >= 0.9 * series.values[2]["Dect"]
    for diameter in DIAMETERS:
        assert series.values[diameter]["PIncDect"] <= series.values[diameter]["IncDect"]
