"""Ablation: literal-driven candidate pruning (Section 6.2, step (3)).

Not a figure of the paper, but a design choice DESIGN.md calls out: the
matcher evaluates premise literals as soon as their variables are bound and
prunes candidates that cannot lead to a violation.  This benchmark measures
batch and incremental detection with pruning enabled and disabled, and checks
the answers agree (the paper's claim that "the additional cost of checking
linear arithmetic expressions is negligible" corresponds to the small gap
between the two).
"""

from __future__ import annotations

import pytest

from repro.datasets.rules import benchmark_rules
from repro.detect import dect, inc_dect
from repro.experiments import build_dataset
from repro.graph.updates import UpdateGenerator, apply_update


@pytest.mark.benchmark(group="ablation-literal-pruning")
def test_ablation_literal_pruning(benchmark, bench_config):
    def run():
        graph = build_dataset("YAGO2", scale=bench_config.scale, seed=bench_config.seed + 1)
        rules = benchmark_rules(graph, count=bench_config.rules_count, max_diameter=4, seed=bench_config.seed)
        delta = UpdateGenerator(seed=3).generate(graph, max(1, graph.edge_count() // 10))
        updated = apply_update(graph, delta)
        return {
            "Dect (pruning)": dect(graph, rules, use_literal_pruning=True),
            "Dect (no pruning)": dect(graph, rules, use_literal_pruning=False),
            "IncDect (pruning)": inc_dect(graph, rules, delta, use_literal_pruning=True, graph_after=updated),
            "IncDect (no pruning)": inc_dect(graph, rules, delta, use_literal_pruning=False, graph_after=updated),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, result in results.items():
        print(f"{name:>22}: cost {result.cost:10.1f}")
    assert results["Dect (pruning)"].violations == results["Dect (no pruning)"].violations
    assert results["IncDect (pruning)"].delta == results["IncDect (no pruning)"].delta
    assert results["Dect (pruning)"].cost <= results["Dect (no pruning)"].cost * 1.05
