"""Exp-1 — Figures 4(a)–4(d): incremental vs. batch detection as |ΔG| grows.

The paper varies |ΔG| from 5% to 35–40% of |G| on DBpedia, YAGO2, Pokec and
Synthetic, comparing Dect, IncDect, PDect, PIncDect and the balancing
ablations.  Expected shape: the batch algorithms are flat, the incremental
algorithms grow with |ΔG|, and incremental wins by a large factor at 5%
(paper: 6.6×–9.8×) shrinking as |ΔG| approaches a third of the graph.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp1_vary_delta, speedup_summary

DELTA_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
ALGORITHMS = ("Dect", "IncDect", "PDect", "PIncDect", "PIncDect_NO")

PANELS = {
    "test_fig4a_dbpedia": "DBpedia",
    "test_fig4b_yago2": "YAGO2",
    "test_fig4c_pokec": "Pokec",
    "test_fig4d_synthetic": "Synthetic",
}


def _run_panel(benchmark, bench_config, dataset: str):
    series = benchmark.pedantic(
        run_exp1_vary_delta,
        kwargs={
            "dataset": dataset,
            "delta_fractions": DELTA_FRACTIONS,
            "config": bench_config,
            "algorithms": ALGORITHMS,
        },
        rounds=1,
        iterations=1,
    )
    print_series(series)
    print(speedup_summary(series, "Dect", "IncDect"))
    print(speedup_summary(series, "PDect", "PIncDect"))
    # shape assertions: incremental beats batch at 5 % updates, batch is flat
    smallest = min(DELTA_FRACTIONS)
    assert series.values[smallest]["IncDect"] < series.values[smallest]["Dect"]
    assert series.values[smallest]["PIncDect"] < series.values[smallest]["PDect"]
    assert series.values[max(DELTA_FRACTIONS)]["Dect"] == series.values[smallest]["Dect"]
    return series


@pytest.mark.benchmark(group="exp1-vary-delta")
def test_fig4a_dbpedia(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "DBpedia")


@pytest.mark.benchmark(group="exp1-vary-delta")
def test_fig4b_yago2(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "YAGO2")


@pytest.mark.benchmark(group="exp1-vary-delta")
def test_fig4c_pokec(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "Pokec")


@pytest.mark.benchmark(group="exp1-vary-delta")
def test_fig4d_synthetic(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "Synthetic")
