"""Regenerate EXPERIMENTS.md from the experiment drivers.

Usage::

    python benchmarks/generate_experiments_report.py [output-path]

Runs every experiment driver with the default benchmark configuration (the
same one the pytest benchmarks use) and writes a markdown report recording
the paper's claim next to the measured series for every table and figure.
"""

from __future__ import annotations

import sys
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    format_series,
    run_exp1_vary_delta,
    run_exp2_vary_graph_size,
    run_exp3_vary_diameter,
    run_exp3_vary_rules,
    run_exp4_vary_interval,
    run_exp4_vary_latency,
    run_exp4_vary_processors,
    run_exp5_effectiveness,
    run_storage_backend_comparison,
)
from repro.experiments.runner import ExperimentSeries  # noqa: E402

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_detector_overhead import measure_overhead  # noqa: E402
from bench_match_plans import measure_match_plans  # noqa: E402
from bench_service_throughput import measure_service_throughput  # noqa: E402


def _block(series: ExperimentSeries, precision: int = 1) -> str:
    return "```\n" + format_series(series, precision) + "\n```\n"


def _speedup_line(series: ExperimentSeries, baseline: str, algorithm: str) -> str:
    ratios = series.speedup(baseline, algorithm)
    if not ratios:
        return ""
    values = list(ratios.values())
    return (
        f"*Measured {algorithm} vs {baseline}: "
        f"{max(values):.1f}× at the smallest x down to {min(values):.1f}× at the largest.*\n"
    )


def generate(output_path: Path) -> None:
    config = ExperimentConfig(rules_count=24, max_diameter=5, processors=8)
    sections: list[str] = []
    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        f"Generated on {date.today().isoformat()} by "
        "`python benchmarks/generate_experiments_report.py` with the default\n"
        "benchmark configuration (‖Σ‖ = 24 template rules, p = 8, C = 60, intvl = 45,\n"
        "scaled-down synthetic analogues of DBpedia / YAGO2 / Pokec — see DESIGN.md §3).\n\n"
        "Measured 'time' is the deterministic cost measure described in\n"
        "`repro.detect.base`: algorithmic work units for sequential algorithms and the\n"
        "simulated cluster makespan for parallel ones.  Absolute values are therefore not\n"
        "comparable to the paper's seconds on a 20-machine Java cluster; the *shapes and\n"
        "orderings* are the reproduction target.\n"
    )

    # ---------------------------------------------------------------- Exp-1
    sections.append("\n## Exp-1 — Figures 4(a)–(d): varying |ΔG|\n")
    sections.append(
        "**Paper claim:** IncDect is 6.6–9.8× faster than Dect at |ΔG| = 5 % and 1.7–2.6× at 25 %, "
        "still winning up to ~33 %; PIncDect outperforms PDect by 5.6–9.8× down to 1.6–2.5×; the batch "
        "algorithms are insensitive to |ΔG|.\n"
    )
    for figure, dataset in (("4(a)", "DBpedia"), ("4(b)", "YAGO2"), ("4(c)", "Pokec"), ("4(d)", "Synthetic")):
        series = run_exp1_vary_delta(dataset, config=config)
        sections.append(f"\n### Figure {figure} — {dataset}\n")
        sections.append(_block(series))
        sections.append(_speedup_line(series, "Dect", "IncDect"))
        sections.append(_speedup_line(series, "PDect", "PIncDect"))

    # ---------------------------------------------------------------- Exp-2
    sections.append("\n## Exp-2 — Figure 4(e): varying |G| (Synthetic)\n")
    sections.append(
        "**Paper claim:** all algorithms take longer on larger G; the incremental algorithms are less "
        "sensitive to |G| than the batch ones; PIncDect does best throughout.\n"
    )
    series = run_exp2_vary_graph_size(config=config)
    sections.append(_block(series))

    # ---------------------------------------------------------------- Exp-3
    sections.append("\n## Exp-3 — Figures 4(f)–(g): varying ‖Σ‖\n")
    sections.append(
        "**Paper claim:** more rules cost more for every algorithm; IncDect and PIncDect scale well with ‖Σ‖.\n"
    )
    for figure, dataset in (("4(f)", "DBpedia"), ("4(g)", "YAGO2")):
        series = run_exp3_vary_rules(dataset, rule_counts=(10, 20, 30, 40, 50, 60), config=config)
        sections.append(f"\n### Figure {figure} — {dataset}\n")
        sections.append(_block(series))

    sections.append("\n## Exp-3 — Figure 4(h): varying dΣ (DBpedia)\n")
    sections.append("**Paper claim:** all algorithms take longer as the rule diameter grows (2 → 6).\n")
    series = run_exp3_vary_diameter("DBpedia", config=config)
    sections.append(_block(series))

    # ---------------------------------------------------------------- Exp-4
    sections.append("\n## Exp-4 — Figures 4(i)–(l): varying the number of processors p\n")
    sections.append(
        "**Paper claim:** PIncDect and PDect are on average 3.7× / 3.8× faster when p grows from 4 to 20; "
        "PIncDect consistently beats PDect and the ablation variants (hybrid balancing improves 1.5–1.8× "
        "over no balancing).\n"
    )
    for figure, dataset in (("4(i)", "DBpedia"), ("4(j)", "YAGO2"), ("4(k)", "Pokec"), ("4(l)", "Synthetic")):
        series = run_exp4_vary_processors(dataset, config=config)
        sections.append(f"\n### Figure {figure} — {dataset}\n")
        sections.append(_block(series))
        sections.append(_speedup_line(series, "PIncDect_NO", "PIncDect"))

    sections.append("\n## Exp-4 — Figure 4(m): varying the latency parameter C (Pokec)\n")
    sections.append(
        "**Paper claim:** an interior optimum (C ≈ 80 in the paper): small C splits too eagerly, large C "
        "falls back to local computation.\n"
    )
    series = run_exp4_vary_latency("Pokec", config=config)
    sections.append(_block(series))

    sections.append("\n## Exp-4 — Figure 4(n): varying the monitoring interval intvl (YAGO2)\n")
    sections.append(
        "**Paper claim:** an interior optimum (intvl ≈ 45 s): frequent monitoring costs messages, rare "
        "monitoring lets skew persist.\n"
    )
    series = run_exp4_vary_interval("YAGO2", config=config)
    sections.append(_block(series))

    # ---------------------------------------------------------------- Exp-5
    sections.append("\n## Exp-5 — effectiveness of NGDs\n")
    sections.append(
        "**Paper claim:** the NGDs caught 415 / 212 / 568 errors on DBpedia / YAGO2 / Pokec, 92 % of which "
        "need NGD (not GFD) expressiveness; NGD1–NGD3 and φ1–φ4 catch the concrete errors of Figure 1 and "
        "Section 7.  Here the planted error rates of the synthetic analogues determine the counts; the "
        "Figure 1 graphs each exhibit exactly one violation.\n"
    )
    series = run_exp5_effectiveness(config=config)
    sections.append(_block(series, precision=2))

    # ------------------------------------------------------- storage backends
    sections.append("\n## Storage backends — DictStore vs IndexedStore (no paper analogue)\n")
    sections.append(
        "The graph layer is pluggable (`docs/ARCHITECTURE.md`): `DictStore` preserves the "
        "original flat copy-on-read adjacency, `IndexedStore` keys adjacency by edge label "
        "with zero-copy views.  Wall-clock seconds (best of 3) on the synthetic exp2 graphs; "
        "`expand` is the label-filtered matcher-expansion kernel, `match`/`nbhd` the "
        "end-to-end detection and neighbourhood-extraction paths.  Both backends are "
        "verified to produce identical violation sets.\n"
    )
    series = run_storage_backend_comparison(config=config)
    sections.append(_block(series, precision=4))
    speedup_lines = [
        f"* {size}: " + ", ".join(f"{metric} {ratio:.2f}×" for metric, ratio in ratios.items())
        for size, ratios in series.metadata["speedups"].items()
    ]
    sections.append(
        "*IndexedStore speedups over DictStore:*\n\n" + "\n".join(speedup_lines) + "\n"
    )

    # ----------------------------------------------------------- match plans
    sections.append("\n## Match planner — planned vs static ordering (no paper analogue)\n")
    sections.append(
        "The matcher is a compile-then-execute pipeline (`docs/ARCHITECTURE.md`, "
        "\"The matching pipeline\"): `repro.matching.plan` compiles each rule into a "
        "cost-based `MatchPlan` (variable order from label-cardinality statistics, "
        "per-variable candidate strategies, pre-resolved literal schedules) that all "
        "four kernels execute; `REPRO_MATCH_PLANNER=off` restores the static "
        "pipeline.  `benchmarks/bench_match_plans.py` measures both on the "
        "skewed-label synthetic workload (acceptance: ≥ 1.5× fewer work units, "
        "identical violation sets across planner on/off × {dict, indexed, csr}):\n"
    )
    plans = measure_match_plans()
    sections.append(
        "```\n"
        f"workload: {plans['workload']}\n"
        f"planned ordering:   {plans['planned_operations']} work units "
        f"(cost {plans['planned_cost']:.0f})\n"
        f"static ordering:    {plans['static_operations']} work units "
        f"(cost {plans['static_cost']:.0f})\n"
        f"operations ratio:   {plans['operation_ratio']:.2f}x fewer when planned\n"
        f"violations: {plans['violations']} "
        f"(identical across planner x backends: {plans['violations_identical']})\n"
        + "".join(
            f"{backend} backend:      {seconds * 1000:.1f} ms (planned batch run)\n"
            for backend, seconds in plans["seconds"].items()
        )
        + "```\n"
    )

    # ------------------------------------------------------- session overhead
    sections.append("\n## Detector session API — indirection overhead (no paper analogue)\n")
    sections.append(
        "The public API routes every run through a `Detector` session "
        "(`repro.detect.session`) whose kernels stream violations to sinks and honour "
        "early-termination budgets.  `benchmarks/bench_detector_overhead.py` asserts the "
        "indirection stays below 5 % on the Exp-2 synthetic workload; the measured run:\n"
    )
    overhead = measure_overhead()
    sections.append(
        "```\n"
        f"workload: {overhead['workload']}\n"
        f"raw kernel (drain(iter_dect)):   {overhead['baseline_seconds'] * 1000:.1f} ms\n"
        f"session (Detector.run + sink):   {overhead['session_seconds'] * 1000:.1f} ms\n"
        f"relative overhead:               {overhead['overhead']:+.2%}\n"
        f"violations: {overhead['violations']} (identical: {overhead['violations_identical']}), "
        f"cost identical: {overhead['costs_identical']}\n"
        "```\n"
    )

    # ------------------------------------------------------- service overhead
    sections.append("\n## Detection service — streaming overhead and throughput (no paper analogue)\n")
    sections.append(
        "`repro-detect serve` (`repro.service`) streams detections over HTTP as NDJSON "
        "with per-request budgets and keeps continuous sessions current through "
        "`run_incremental`.  `benchmarks/bench_service_throughput.py` asserts the full "
        "HTTP + NDJSON round trip stays within 25 % of consuming `Detector.stream` "
        "directly on the Exp-2 workload; the measured run:\n"
    )
    service = measure_service_throughput()
    sections.append(
        "```\n"
        f"workload: {service['workload']}\n"
        f"direct (Detector.stream):        {service['direct_seconds'] * 1000:.1f} ms\n"
        f"service (HTTP NDJSON stream):    {service['service_seconds'] * 1000:.1f} ms\n"
        f"relative overhead:               {service['overhead']:+.2%}\n"
        f"per streamed violation:          {service['service_ms_per_violation']:.2f} ms "
        f"(direct {service['direct_ms_per_violation']:.2f} ms)\n"
        f"first violation after:           {service['first_violation_ms']:.1f} ms\n"
        f"small requests/sec:              {service['requests_per_second']:.0f} "
        f"({service['small_requests']} sequential Figure-1 detections)\n"
        f"violations: {service['violations']} (identical: {service['counts_identical']})\n"
        "```\n"
    )

    # ------------------------------------------------------ process execution
    sections.append("\n## Process execution — measured wall-clock speedup (no paper analogue)\n")
    sections.append(
        "`execution=\"processes\"` runs the parallel kernels on real OS worker "
        "processes over sharded read-only graph images (`docs/ARCHITECTURE.md`, "
        "\"The execution layer\") — the first *measured* parallelism of the "
        "reproduction, with the cluster simulator retained as the deterministic "
        "cost-model oracle.  `benchmarks/bench_parallel_speedup.py` asserts "
        "byte-identical violation sets across serial / simulated / process "
        "execution on every machine and enforces the wall-clock bound where "
        "enough CPUs exist (CI: ≥ 1.3× at 4 workers).  The committed baseline "
        "(`benchmarks/BENCH_parallel.json`):\n"
    )
    baseline_path = Path(__file__).resolve().parent / "BENCH_parallel.json"
    if baseline_path.exists():
        import json as _json

        baseline = _json.loads(baseline_path.read_text(encoding="utf-8"))
        process_walls = ", ".join(
            f"p={workers}: {seconds:.2f}s"
            for workers, seconds in sorted(
                baseline["process_wall_seconds"].items(), key=lambda item: int(item[0])
            )
        )
        sections.append(
            "```\n"
            f"workload: {baseline['workload']}\n"
            f"machine:  {baseline['machine']}\n"
            f"serial Dect:          {baseline['serial_wall_seconds']:.2f}s wall\n"
            f"process backend:      {process_walls}\n"
            f"speedup vs serial:    {baseline['speedup_vs_serial']:.2f}x at "
            f"{baseline['processors']} workers\n"
            f"simulated makespan:   {baseline['simulated_makespan']:.0f} work units (oracle)\n"
            f"byte-identical sets:  {baseline['byte_identical_violations']}\n"
            "```\n"
        )
        if baseline["machine"].get("cpus", 1) < baseline.get("processors", 4):
            sections.append(
                "*The committed baseline was recorded on a "
                f"{baseline['machine'].get('cpus', 1)}-CPU container, where wall-clock "
                "parallel speedup is physically impossible — it documents overhead and "
                "parity; CI enforces the ≥ 1.3× bound on multi-core runners.*\n"
            )
    else:
        sections.append(
            "*(no BENCH_parallel.json baseline recorded yet — run "
            "`REPRO_WRITE_BENCH_BASELINE=benchmarks/BENCH_parallel.json "
            "pytest benchmarks/bench_parallel_speedup.py --benchmark-disable`)*\n"
        )

    # ------------------------------------------------------ self-tuning execution
    sections.append("\n## Self-tuning execution — adaptive replanning + warm pools (no paper analogue)\n")
    sections.append(
        "The executors observe per-step candidate cardinalities while matching and "
        "replan a rule's remaining variable order when observations drift from the "
        "compiled estimates (`docs/ARCHITECTURE.md`, \"Self-tuning execution\"); "
        "observed cardinalities persist as history documents and feed the next "
        "compile as priors.  Independently, a `WarmExecutorPool` keeps worker "
        "processes and their loaded runtime alive across `execution=\"processes\"` "
        "runs, keyed by (graph snapshot, rules digest) and invalidated on registry "
        "version bumps.  `benchmarks/bench_selftuning.py` asserts identical "
        "violation sets for adaptive-on/off and warm/cold, ≥ 1.2× fewer work "
        "units from replanning on the correlated-hub workload, and a ≥ 2× "
        "steady-state per-job win from the warm pool on the service path.  The "
        "committed baseline (`benchmarks/BENCH_selftuning.json`):\n"
    )
    selftuning_path = Path(__file__).resolve().parent / "BENCH_selftuning.json"
    if selftuning_path.exists():
        import json as _json

        selftuning = _json.loads(selftuning_path.read_text(encoding="utf-8"))
        adaptive = selftuning["adaptive"]
        warm = selftuning["warm_pool"]
        sections.append(
            "```\n"
            f"adaptive workload: {adaptive['workload']}\n"
            f"static ordering:    {adaptive['static_operations']} work units\n"
            f"adaptive replan:    {adaptive['adaptive_operations']} work units "
            f"({adaptive['operations_ratio']:.2f}x fewer)\n"
            f"byte-identical sets: {adaptive['byte_identical_violations']}\n"
            f"warm-pool workload: {warm['workload']}\n"
            f"cold jobs:          {warm['cold_seconds_per_job']:.3f}s per job "
            f"(fresh workers + runtime every request)\n"
            f"warm pool:          {warm['warm_seconds_per_job']:.3f}s per job steady-state "
            f"({warm['warm_speedup']:.2f}x; pool {warm['pool']})\n"
            f"identical records:  {warm['identical_violation_records']}\n"
            "```\n"
        )
    else:
        sections.append(
            "*(no BENCH_selftuning.json baseline recorded yet — run "
            "`REPRO_WRITE_BENCH_BASELINE=benchmarks/BENCH_selftuning.json "
            "pytest benchmarks/bench_selftuning.py --benchmark-disable`)*\n"
        )

    # ------------------------------------------------------ compiled evaluation
    sections.append("\n## Compiled evaluation — closure-compiled literal schedules (no paper analogue)\n")
    sections.append(
        "Literal evaluation is the kernels' innermost loop; "
        "`repro.matching.compiled` compiles each `(rule, order)` pair once "
        "into slot-indexed closures — pre-resolved attribute reads, "
        "specialized operators, folded constants, the comparison baked in "
        "from a dispatch table — and the CSR backend intersects anchored "
        "candidates by a sorted-rank merge instead of per-candidate hash "
        "probes (`docs/ARCHITECTURE.md`, \"Compiled evaluation\").  "
        "`REPRO_COMPILED_EVAL=off` restores the interpreted AST walk "
        "byte-identically.  `benchmarks/bench_compiled_eval.py` asserts "
        "identical violations *and* identical `MatchStatistics` in every "
        "field, and a ≥ 1.5× wall-clock win on the literal-heavy workload.  "
        "The committed baseline (`benchmarks/BENCH_compiled.json`):\n"
    )
    compiled_path = Path(__file__).resolve().parent / "BENCH_compiled.json"
    if compiled_path.exists():
        import json as _json

        compiled = _json.loads(compiled_path.read_text(encoding="utf-8"))
        sections.append(
            "```\n"
            f"workload: {compiled['workload']}\n"
            f"machine:  {compiled['machine']}\n"
            f"interpreted evaluator: {compiled['interpreted_wall_seconds']:.3f}s wall "
            f"(best of {compiled['repeats']})\n"
            f"compiled schedules:    {compiled['compiled_wall_seconds']:.3f}s wall "
            f"({compiled['speedup_vs_interpreted']:.2f}x)\n"
            f"byte-identical sets:   {compiled['byte_identical_violations']}\n"
            f"identical statistics:  {compiled['identical_statistics']}\n"
            "```\n"
        )
    else:
        sections.append(
            "*(no BENCH_compiled.json baseline recorded yet — run "
            "`REPRO_WRITE_BENCH_BASELINE=benchmarks/BENCH_compiled.json "
            "pytest benchmarks/bench_compiled_eval.py --benchmark-disable`)*\n"
        )

    # ----------------------------------------------------------------- durability
    sections.append("\n## Durability — WAL, checkpoints, crash recovery (no paper analogue)\n")
    sections.append(
        "The paper assumes \"the storage layer maintains the updated graph\" and "
        "never prices it; the reproduction makes that layer explicit "
        "(`src/repro/storage/`, `docs/ARCHITECTURE.md` \"The durability layer\"): "
        "a SQLite-backed `persistent` store behind the GraphStore contract, a "
        "CRC-checked fsync'd write-ahead log with ack-implies-logged semantics, "
        "and checkpointed recovery for `serve --data-dir` that restores graphs, "
        "versions, retained snapshots, catalogs, and continuous sessions "
        "byte-identically after SIGKILL.  `benchmarks/bench_persistence.py` "
        "bounds the WAL append overhead per accepted update (< 1.25x the "
        "in-memory apply), measures cold-open (checkpoint + WAL-suffix replay "
        "vs a plain JSON graph load), and asserts byte-identical violations "
        "across `indexed`/`csr`/`persistent` engines.  The committed baseline "
        "(`benchmarks/BENCH_persistence.json`):\n"
    )
    persistence_path = Path(__file__).resolve().parent / "BENCH_persistence.json"
    if persistence_path.exists():
        import json as _json

        persistence = _json.loads(persistence_path.read_text(encoding="utf-8"))
        wal = persistence["wal"]
        cold = persistence["cold_open"]
        detect_walls = ", ".join(
            f"{engine}: {seconds:.3f}s"
            for engine, seconds in sorted(persistence["detect_wall_seconds"].items())
        )
        sections.append(
            "```\n"
            f"workload: {persistence['workload']}\n"
            f"machine:  {persistence['machine']}\n"
            f"WAL append overhead:  {wal['overhead_ratio']:.2f}x vs in-memory apply "
            f"({wal['updates']} updates, fsync per ack)\n"
            f"cold open:            {cold['recover_seconds']:.3f}s checkpoint+replay "
            f"({cold['replayed_records']} WAL records) vs "
            f"{cold['json_load_seconds']:.3f}s plain JSON load\n"
            f"detect wall seconds:  {detect_walls}\n"
            f"persistent/indexed:   {persistence['detect_persistent_vs_indexed']:.2f}x "
            "(reads served from the in-memory mirror)\n"
            f"byte-identical sets:  {persistence['byte_identical_violations']}\n"
            "```\n"
        )
    else:
        sections.append(
            "*(no BENCH_persistence.json baseline recorded yet — run "
            "`REPRO_WRITE_BENCH_BASELINE=benchmarks/BENCH_persistence.json "
            "pytest benchmarks/bench_persistence.py --benchmark-disable`)*\n"
        )

    # ------------------------------------------------------------- fault tolerance
    sections.append("\n## Fault tolerance — supervision, recovery, degradation (no paper analogue)\n")
    sections.append(
        "The paper's cluster algorithms assume workers that never fail; the "
        "reproduction's process backend supervises them "
        "(`docs/ARCHITECTURE.md`, \"Fault tolerance\"): every worker↔parent "
        "message is epoch-tagged, the parent tracks shipped-but-unconfirmed "
        "units per worker, and a SIGKILLed or hung worker is respawned with "
        "its outstanding units re-executed — at-least-once re-execution plus "
        "parent-side dedup gives byte-identical `ViolationSet`s.  Past the "
        "restart budget the run *degrades* to the parent's serial path "
        "(`degraded=True`) instead of failing; poison units are quarantined "
        "(`stop_reason=\"units_quarantined\"`).  All failure modes are "
        "reachable deterministically via `REPRO_FAULTS` "
        "(`repro.testing.faults`).  `benchmarks/bench_fault_tolerance.py` "
        "bounds crash recovery at < 1.5x a clean run and the heartbeat tax "
        "at < 2% (enforced on ≥ 4 CPUs).  The committed baseline "
        "(`benchmarks/BENCH_faults.json`):\n"
    )
    faults_path = Path(__file__).resolve().parent / "BENCH_faults.json"
    if faults_path.exists():
        import json as _json

        faults = _json.loads(faults_path.read_text(encoding="utf-8"))
        sections.append(
            "```\n"
            f"workload: {faults['workload']}\n"
            f"machine:  {faults['machine']}\n"
            f"clean run:            {faults['clean_wall_seconds']:.3f}s wall "
            f"(p = {faults['processors']})\n"
            f"crash + recovery:     {faults['crash_wall_seconds']:.3f}s wall "
            f"({faults['recovery_overhead_ratio']:.2f}x; "
            f"{faults['worker_restarts']} restart(s), "
            f"degraded={faults['crash_run_degraded']})\n"
            f"heartbeats disabled:  {faults['no_heartbeat_wall_seconds']:.3f}s wall "
            f"(tax {faults['heartbeat_overhead_fraction'] * 100:.2f}%)\n"
            f"byte-identical sets:  {faults['byte_identical_violations']}\n"
            "```\n"
        )
    else:
        sections.append(
            "*(no BENCH_faults.json baseline recorded yet — run "
            "`REPRO_WRITE_BENCH_BASELINE=benchmarks/BENCH_faults.json "
            "pytest benchmarks/bench_fault_tolerance.py --benchmark-disable`)*\n"
        )

    # ---------------------------------------------------------------- known deviations
    sections.append(
        "\n## Known deviations from the paper\n\n"
        "* Absolute running times are not comparable: the paper measures seconds of a Java\n"
        "  implementation on 20 machines over graphs with tens of millions of edges; this\n"
        "  reproduction measures deterministic work units over graphs four orders of magnitude\n"
        "  smaller (see DESIGN.md §3 for the substitution rationale).\n"
        "* The IncDect-vs-Dect advantage at 5 % updates is of the same order as the paper's\n"
        "  (≈5–12× depending on the dataset) but the exact ratios differ with the synthetic\n"
        "  analogues' density and rule selectivity.\n"
        "* The individual contributions of the two balancing mechanisms are smaller than in the\n"
        "  paper: work-unit splitting only pays off on the hub-heavy Pokec analogue, and the\n"
        "  latency/interval curves (Figures 4(m)/(n)) are flatter than the paper's, because the\n"
        "  scaled-down workloads have far fewer simultaneously-queued work units per processor.\n"
        "  The orderings (hybrid ≼ single-mechanism ≼ none, with correctness identical) still hold.\n"
    )

    output_path.write_text("".join(sections), encoding="utf-8")
    print(f"wrote {output_path} ({output_path.stat().st_size} bytes)")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    generate(target)
