"""Compiled literal schedules vs the interpreted evaluator (no figure analogue).

One claim of the compiled rule kernels is measured by one driver
(:func:`repro.experiments.run_compiled_eval`): on a literal-heavy
workload — five premise literals and an arithmetic conclusion per
candidate pair — the closure-compiled schedules must beat the
interpreted AST walk by at least ``REPRO_COMPILED_BOUND`` (default 1.5x)
wall-clock, while producing a byte-identical violation set and identical
``MatchStatistics`` in every field (the compiled path is a pure
evaluation-strategy change; billing parity is part of the contract).

The parity assertions are unconditional; each timing leg takes the best
of three runs to shed scheduler noise.  ``REPRO_WRITE_BENCH_BASELINE=path``
persists the report JSON — ``benchmarks/BENCH_compiled.json`` keeps the
committed baseline read by ``generate_experiments_report.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import run_compiled_eval


def _speedup_bound() -> float:
    return float(os.environ.get("REPRO_COMPILED_BOUND", "1.5"))


@pytest.mark.benchmark(group="compiled-eval")
def test_compiled_eval_speedup(benchmark):
    report = benchmark.pedantic(run_compiled_eval, rounds=1, iterations=1)
    print(json.dumps(report, indent=2, sort_keys=True))

    assert report["byte_identical_violations"] is True
    assert report["identical_statistics"] is True
    assert report["workload"]["violations"] > 0
    assert report["workload"]["literal_evaluations"] > 100_000

    speedup = report["speedup_vs_interpreted"]
    assert speedup >= _speedup_bound(), (
        f"compiled schedules reached only {speedup:.2f}x over the "
        f"interpreted evaluator (bound {_speedup_bound()}x)"
    )
    print(f"compiled evaluation {speedup:.2f}x over interpreted")
