"""Exp-5: effectiveness of NGDs as data-quality rules.

The paper reports the number of errors caught on DBpedia / YAGO2 / Pokec
(415 / 212 / 568) and that 92% of them require NGD expressiveness (arithmetic
or comparison) beyond GFDs, illustrated with NGD1–NGD3 and the Figure 1
examples.  This benchmark reports the same quantities on the synthetic
analogues: total violations, violations only catchable by non-GFD rules, and
the per-example-graph counts for φ1–φ4.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp5_effectiveness


@pytest.mark.benchmark(group="exp5-effectiveness")
def test_exp5_effectiveness(benchmark, bench_config):
    series = benchmark.pedantic(
        run_exp5_effectiveness, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    print_series(series, precision=2)
    # every Figure-1 graph exhibits exactly the one planted inconsistency
    for name in ("G1", "G2", "G3", "G4"):
        assert series.values[f"Figure1-{name}"]["violations"] == 1.0
    # errors are caught on every KB analogue and most need numeric (non-GFD) rules
    for dataset in ("DBpedia", "YAGO2", "Pokec"):
        row = series.values[dataset]
        assert row["violations"] > 0
        assert row["numeric_share"] >= 0.9
