"""Storage-engine micro-benchmark: DictStore vs IndexedStore.

The graph layer is pluggable (see ``docs/ARCHITECTURE.md``): ``DictStore``
keeps the original flat copy-on-read adjacency, ``IndexedStore`` keys
adjacency by edge label with zero-copy views.  This benchmark builds the
synthetic exp2 graphs on both backends and measures wall-clock seconds on
the two storage-bound hot paths:

* ``expand`` — the label-filtered matcher-expansion kernel (the adjacency
  access pattern of candidate filtering, undiluted by matcher bookkeeping);
* ``match`` / ``nbhd`` — end-to-end batch detection and ``G_d(ΔG)``
  extraction, where backend-neutral literal evaluation dilutes the ratio.

The acceptance bar: IndexedStore must be at least 1.5x faster than
DictStore on the expansion kernel at every size, while producing the
identical violation set (the driver itself raises if the backends drift).
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_storage_backend_comparison

SIZES = ((1000, 2000), (3000, 6000), (8000, 10000))


@pytest.mark.benchmark(group="storage-backends")
def test_storage_backend_comparison(benchmark, bench_config):
    series = benchmark.pedantic(
        run_storage_backend_comparison,
        kwargs={"sizes": SIZES, "config": bench_config, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print_series(series, precision=4)
    speedups = series.metadata["speedups"]
    for size in SIZES:
        ratios = speedups[size]
        print(f"{size}: " + ", ".join(f"{k} {v:.2f}x" for k, v in ratios.items()))
        # the architectural win: label-filtered expansion is O(result), not O(degree)
        assert ratios["expand"] >= 1.5, (
            f"IndexedStore expansion speedup {ratios['expand']:.2f}x < 1.5x at {size}"
        )
        # end-to-end paths include backend-neutral work; guard against regressions
        # (IndexedStore must never be substantially slower than the reference)
        assert ratios["match"] >= 0.7, f"match regression at {size}: {ratios['match']:.2f}x"
        assert ratios["nbhd"] >= 0.7, f"neighbourhood regression at {size}: {ratios['nbhd']:.2f}x"
