"""Micro-benchmark: the detection service's streaming overhead is bounded.

``repro-detect serve`` wraps ``Detector.stream`` in HTTP + NDJSON: every
violation is JSON-encoded, written to a socket, flushed, and re-parsed by
the client.  This benchmark measures that full round trip against consuming
``Detector.stream`` directly, on the Exp-2 synthetic workload, and asserts
the relative wall-time overhead stays below 25 % — i.e. the service tax is
a constant per violation, not a change to the detection complexity.

Two further service-only figures are reported (no direct analogue):

* **requests/sec** — sequential small detections (the Figure-1 G2 graph)
  through one client, measuring fixed per-request cost;
* **first-violation latency** — time from sending the request to decoding
  the first violation record, the "time to first finding" a streaming
  client actually experiences.

Run standalone (``python benchmarks/bench_service_throughput.py``) or via
pytest; ``generate_experiments_report.py`` records the numbers in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.figure1 import figure1_g2  # noqa: E402
from repro.datasets.rules import benchmark_rules  # noqa: E402
from repro.datasets.synthetic import synthetic_graph  # noqa: E402
from repro.detect import Detector  # noqa: E402
from repro.service import DetectionService, ServiceClient  # noqa: E402

#: Exp-2 synthetic workload — the same shape bench_detector_overhead uses.
WORKLOAD = {"num_nodes": 16_000, "num_edges": 32_000, "rules_count": 24, "seed": 1}

#: Small-request workload for the requests/sec figure.
SMALL_REQUESTS = 40

#: Acceptance bound on the relative streaming overhead of the service path.
#: Override with REPRO_SERVICE_OVERHEAD_BOUND on noisy machines; the
#: violation-identity assertions are unconditional either way.
MAX_OVERHEAD = float(os.environ.get("REPRO_SERVICE_OVERHEAD_BOUND", "0.25"))


def _consume_direct(detector: Detector, graph) -> tuple[int, float, float]:
    """Drain ``Detector.stream``; return (violations, elapsed, first-violation latency)."""
    started = time.perf_counter()
    first = None
    count = 0
    for _ in detector.stream(graph):
        if first is None:
            first = time.perf_counter() - started
        count += 1
    return count, time.perf_counter() - started, first or 0.0


def _consume_service(client: ServiceClient, graph_name: str, catalog: str) -> tuple[int, float, float]:
    """Drain one service stream; return (violations, elapsed, first-violation latency)."""
    started = time.perf_counter()
    first = None
    count = 0
    for record in client.stream_detect(graph_name, catalog=catalog):
        if record["type"] == "violation":
            if first is None:
                first = time.perf_counter() - started
            count += 1
    return count, time.perf_counter() - started, first or 0.0


def measure_service_throughput(rounds: int = 3) -> dict:
    """Time direct streaming against the full HTTP/NDJSON path.

    Best-of-``rounds`` per path, alternating runs to cancel scheduler noise
    (the same protocol as ``bench_detector_overhead``).  Also measures
    requests/sec on a stream of small detections.
    """
    graph = synthetic_graph(
        num_nodes=WORKLOAD["num_nodes"],
        num_edges=WORKLOAD["num_edges"],
        seed=WORKLOAD["seed"],
        name="service-workload",
    )
    rules = benchmark_rules(graph, count=WORKLOAD["rules_count"], max_diameter=5, seed=0)

    service = DetectionService(port=0)
    service.registry.register("bench", graph)
    service.registry.register("small", figure1_g2())
    service.manager.register_catalog("bench", rules)

    with service:
        client = ServiceClient(service.url, timeout=600)

        direct_count, _, _ = _consume_direct(Detector(rules, engine="batch"), graph)
        service_count, _, service_first = _consume_service(client, "bench", "bench")

        direct_time = service_time = float("inf")
        for _ in range(rounds):
            _, elapsed, _ = _consume_direct(Detector(rules, engine="batch"), graph)
            direct_time = min(direct_time, elapsed)
            _, elapsed, first = _consume_service(client, "bench", "bench")
            if elapsed < service_time:
                service_time, service_first = elapsed, first

        started = time.perf_counter()
        for _ in range(SMALL_REQUESTS):
            client.detect("small", catalog="bench")
        small_elapsed = time.perf_counter() - started

    per_violation = lambda seconds, count: seconds / count if count else 0.0  # noqa: E731

    return {
        "workload": dict(WORKLOAD),
        "violations": service_count,
        "counts_identical": direct_count == service_count,
        "direct_seconds": direct_time,
        "service_seconds": service_time,
        "overhead": service_time / direct_time - 1.0,
        "direct_ms_per_violation": per_violation(direct_time, direct_count) * 1000,
        "service_ms_per_violation": per_violation(service_time, service_count) * 1000,
        "first_violation_ms": service_first * 1000,
        "small_requests": SMALL_REQUESTS,
        "requests_per_second": SMALL_REQUESTS / small_elapsed,
    }


def test_service_streaming_overhead():
    """Service streams are violation-identical to the kernel and < 25 % slower.

    The timing half retries a couple of times before failing (shared
    machines burst); the count-identity assertion is unconditional.
    """
    measured = measure_service_throughput()
    assert measured["counts_identical"], measured
    assert measured["violations"] > 0, "workload must actually produce violations"
    assert measured["requests_per_second"] > 0
    for _ in range(2):
        if measured["overhead"] < MAX_OVERHEAD:
            break
        measured = measure_service_throughput()
    assert measured["overhead"] < MAX_OVERHEAD, (
        f"service streaming costs {measured['overhead']:.1%} over direct "
        f"Detector.stream (bound {MAX_OVERHEAD:.0%}): {measured}"
    )


if __name__ == "__main__":
    report = measure_service_throughput()
    print(
        f"direct {report['direct_seconds'] * 1000:.1f} ms, "
        f"service {report['service_seconds'] * 1000:.1f} ms, "
        f"overhead {report['overhead']:+.2%} "
        f"({report['violations']} violations, "
        f"{report['service_ms_per_violation']:.2f} ms/violation streamed, "
        f"first violation after {report['first_violation_ms']:.1f} ms, "
        f"{report['requests_per_second']:.0f} small requests/sec)"
    )
