"""Benchmarks for the future-work extensions: graph repair and aggregate rules.

These are not figures of the paper (Section 8 lists both as open topics); the
benchmarks record the cost of the extension features so regressions are
visible alongside the reproduction benchmarks.
"""

from __future__ import annotations

import pytest

from repro.core.aggregates import AggregateLiteral, AggregateRule, AggregateTerm, find_aggregate_violations
from repro.core.repair import repair_graph
from repro.core.validation import find_violations, graph_satisfies
from repro.datasets.rules import benchmark_rules
from repro.expr.expressions import var
from repro.expr.literals import Comparison, LiteralSet
from repro.experiments import build_dataset
from repro.graph.pattern import Pattern


@pytest.mark.benchmark(group="extension-repair")
def test_repair_planted_errors(benchmark, bench_config):
    """Detect the planted part≤whole violations and repair them with minimal change."""

    def run():
        graph = build_dataset("YAGO2", scale=0.5, seed=bench_config.seed + 1)
        rules = benchmark_rules(graph, count=8, max_diameter=2, seed=bench_config.seed)
        repaired, plan = repair_graph(graph, rules)
        return graph, rules, repaired, plan

    graph, rules, repaired, plan = benchmark.pedantic(run, rounds=1, iterations=1)
    before = len(find_violations(graph, rules))
    after = len(find_violations(repaired, rules))
    print(f"\nviolations before repair: {before}, after repair: {after}, changes: {len(plan.repairs)}")
    assert plan.is_complete()
    assert after == 0
    assert graph_satisfies(repaired, rules)


@pytest.mark.benchmark(group="extension-aggregates")
def test_aggregate_rule_detection(benchmark, bench_config):
    """Aggregate rule over every entity's numeric facts (sum of facts is non-negative)."""

    def run():
        graph = build_dataset("DBpedia", scale=0.5, seed=bench_config.seed + 1)
        entity_types = sorted({node.label for node in graph.nodes() if node.label.startswith("type_")})
        rules = []
        for entity_type in entity_types[:5]:
            pattern = Pattern.from_edges(f"agg_{entity_type}", nodes=[("x", entity_type)])
            literal = AggregateLiteral(
                AggregateTerm("sum", "x", "rel_0", "val"), Comparison.GE, var("x", "degree_hint")
            )
            rules.append(AggregateRule(pattern, LiteralSet(), [literal], name=f"agg_{entity_type}"))
        return graph, rules, find_aggregate_violations(graph, rules)

    graph, rules, violations = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\naggregate rules: {len(rules)}, violations: {len(violations)}")
    assert len(rules) > 0
    # the sum of a non-negative fact is ≥ the small degree hint for almost every entity
    assert len(violations) < graph.node_count()
