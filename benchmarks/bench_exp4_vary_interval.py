"""Exp-4 — Figure 4(n): sensitivity to the workload-monitoring interval intvl.

The paper tunes intvl from 15s to 65s on YAGO2 (p = 8, C = 60) and finds an
optimum around 45s: monitoring too often wastes messages, monitoring too
rarely lets skew persist.  PIncDect is compared against PIncDect_ns, the
variant without work-unit splitting.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp4_vary_interval

INTERVALS = (15, 30, 45, 50, 65)


@pytest.mark.benchmark(group="exp4-vary-interval")
def test_fig4n_yago2_interval(benchmark, bench_config):
    series = benchmark.pedantic(
        run_exp4_vary_interval,
        kwargs={"dataset": "YAGO2", "intervals": INTERVALS, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print_series(series)
    best = min(INTERVALS, key=lambda interval: series.values[interval]["PIncDect"])
    print(f"best intvl for PIncDect: {best}")
    # the makespan varies only mildly across intervals (the mechanism is a tuning knob, not a cliff)
    costs = [series.values[interval]["PIncDect"] for interval in INTERVALS]
    assert max(costs) <= 2.0 * min(costs)
