"""Fault-tolerance overhead: recovery cost and heartbeat tax (no figure analogue).

Two claims of the supervision layer (`docs/ARCHITECTURE.md`, "Fault
tolerance") are measured:

* **recovery overhead** — a run whose worker 0 is SIGKILLed mid-flight
  (``REPRO_FAULTS=worker_death:worker=0,epoch=0,after=K``) must finish
  within ``REPRO_FAULTS_RECOVERY_BOUND`` (default 1.5x) of the clean
  run's wall time, with a byte-identical ``ViolationSet`` — the parent
  respawns the worker and re-executes only the unconfirmed units, it
  does not restart the run;
* **heartbeat tax** — the idle-period heartbeats workers send so the
  parent can tell hung from busy must cost less than
  ``REPRO_FAULTS_HEARTBEAT_BOUND`` (default 2%) of wall time versus a
  run with heartbeats disabled (``REPRO_WORKER_HEARTBEAT_PERIOD=0``).

Parity assertions are unconditional (deterministic); the wall-clock
bounds are only enforced on machines with at least 4 CPUs — below that,
scheduler noise on oversubscribed workers dwarfs both effects.
``REPRO_WRITE_BENCH_BASELINE=path`` persists the report JSON —
``benchmarks/BENCH_faults.json`` keeps the committed baseline read by
``generate_experiments_report.py``.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from repro.datasets.kb import KBConfig, knowledge_graph
from repro.datasets.rules import benchmark_rules
from repro.detect import DetectionOptions, Detector
from repro.detect.parallel.executor import fault_tolerance_counters

FAULTS_ENV = "REPRO_FAULTS"
HEARTBEAT_ENV = "REPRO_WORKER_HEARTBEAT_PERIOD"


def _recovery_bound() -> float:
    return float(os.environ.get("REPRO_FAULTS_RECOVERY_BOUND", "1.5"))


def _heartbeat_bound() -> float:
    return float(os.environ.get("REPRO_FAULTS_HEARTBEAT_BOUND", "0.02"))


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_run(detector_factory, graph, repeats: int = 2):
    """Best-of-``repeats`` wall time (min damps scheduler noise)."""
    best = None
    result = None
    for _ in range(repeats):
        detector = detector_factory()
        started = time.perf_counter()
        result = detector.run(graph)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_fault_tolerance(entities: int = 300, processors: int = 2) -> dict:
    """Measure recovery overhead and the heartbeat tax; return the report."""
    config = KBConfig(
        name="kb-faults-bench",
        num_entities=entities,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=2.0,
        error_rate=0.08,
        seed=8,
        hub_link_fraction=0.4,
        num_hubs=2,
    )
    graph = knowledge_graph(config)
    rules = benchmark_rules(graph, count=12, max_diameter=4, seed=2)
    serial = Detector(rules, engine="batch").run(graph)

    def factory():
        return Detector(
            rules,
            engine="parallel",
            processors=processors,
            options=DetectionOptions(execution="processes"),
        )

    saved = {key: os.environ.get(key) for key in (FAULTS_ENV, HEARTBEAT_ENV)}

    def _restore():
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    try:
        # clean baseline (heartbeats at their default period)
        os.environ.pop(FAULTS_ENV, None)
        os.environ.pop(HEARTBEAT_ENV, None)
        clean_time, clean = _timed_run(factory, graph)

        # recovery: SIGKILL worker 0 mid-flight, re-execute its units
        restarts_before = fault_tolerance_counters()["worker_restarts"]
        os.environ[FAULTS_ENV] = "worker_death:worker=0,epoch=0,after=4"
        crash_time, crashed = _timed_run(factory, graph)
        restarts = fault_tolerance_counters()["worker_restarts"] - restarts_before
        os.environ.pop(FAULTS_ENV, None)

        # heartbeat tax: default period vs heartbeats off
        os.environ[HEARTBEAT_ENV] = "0"
        no_heartbeat_time, silent = _timed_run(factory, graph)
    finally:
        _restore()

    recovery_ratio = crash_time / clean_time if clean_time else float("inf")
    heartbeat_fraction = (
        (clean_time - no_heartbeat_time) / no_heartbeat_time
        if no_heartbeat_time
        else 0.0
    )
    report = {
        "workload": {
            "entities": entities,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "rules": len(rules),
            "violations": len(serial.violations),
        },
        "machine": {"cpus": _available_cpus(), "platform": platform.platform()},
        "processors": processors,
        "clean_wall_seconds": round(clean_time, 4),
        "crash_wall_seconds": round(crash_time, 4),
        "recovery_overhead_ratio": round(recovery_ratio, 3),
        "worker_restarts": restarts,
        "no_heartbeat_wall_seconds": round(no_heartbeat_time, 4),
        "heartbeat_overhead_fraction": round(heartbeat_fraction, 4),
        "byte_identical_violations": (
            crashed.violations.to_json()
            == clean.violations.to_json()
            == silent.violations.to_json()
            == serial.violations.to_json()
        ),
        "crash_run_degraded": crashed.degraded,
    }
    baseline = os.environ.get("REPRO_WRITE_BENCH_BASELINE")
    if baseline:
        with open(baseline, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


@pytest.mark.benchmark(group="fault-tolerance")
def test_fault_tolerance_overheads(benchmark):
    report = benchmark.pedantic(run_fault_tolerance, rounds=1, iterations=1)
    print(json.dumps(report, indent=2, sort_keys=True))

    assert report["byte_identical_violations"] is True
    assert report["worker_restarts"] >= 1
    assert report["crash_run_degraded"] is False

    ratio = report["recovery_overhead_ratio"]
    fraction = report["heartbeat_overhead_fraction"]
    if _available_cpus() >= 4:
        assert ratio <= _recovery_bound(), (
            f"crash recovery cost {ratio:.2f}x of a clean run "
            f"(bound {_recovery_bound()}x)"
        )
        assert fraction <= _heartbeat_bound(), (
            f"heartbeats cost {fraction * 100:.1f}% of wall time "
            f"(bound {_heartbeat_bound() * 100:.0f}%)"
        )
        print(
            f"recovery {ratio:.2f}x, heartbeats {fraction * 100:.2f}% "
            f"({report['worker_restarts']} restart(s))"
        )
    else:  # pragma: no cover - small runner
        print(
            f"NOTE: {_available_cpus()} CPU(s) — wall-clock bounds skipped "
            f"(measured recovery {ratio:.2f}x, heartbeats {fraction * 100:.2f}%); "
            "parity verified"
        )
