"""Exp-2 — Figure 4(e): scalability with |G| on synthetic graphs.

The paper grows the synthetic graph from (10M, 20M) to (80M, 100M) with |ΔG|
fixed at 15%.  This reproduction sweeps the same 1:2 → 4:5 node/edge ratios
at laptop scale.  Expected shape: every algorithm grows with |G|, the
incremental algorithms grow more slowly than their batch counterparts, and
PIncDect stays the cheapest throughout.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp2_vary_graph_size

SIZES = ((1000, 2000), (2000, 4000), (3000, 6000), (6000, 8000), (8000, 10000))


@pytest.mark.benchmark(group="exp2-vary-graph-size")
def test_fig4e_synthetic_graph_size(benchmark, bench_config):
    series = benchmark.pedantic(
        run_exp2_vary_graph_size,
        kwargs={"sizes": SIZES, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print_series(series)
    smallest, largest = SIZES[0], SIZES[-1]
    # cost grows with |G| for the batch algorithm ...
    assert series.values[largest]["Dect"] > series.values[smallest]["Dect"]
    # ... and the incremental algorithms stay below their batch counterparts at every size
    for size in SIZES:
        assert series.values[size]["IncDect"] < series.values[size]["Dect"]
        assert series.values[size]["PIncDect"] < series.values[size]["PDect"]
    # incremental is less sensitive to |G| than batch (smaller relative growth)
    batch_growth = series.values[largest]["Dect"] / series.values[smallest]["Dect"]
    incremental_growth = series.values[largest]["IncDect"] / series.values[smallest]["IncDect"]
    assert incremental_growth < batch_growth * 1.5
