"""Durability layer costs: WAL overhead, cold-open time, detection parity.

No figure analogue — the paper assumes "the storage layer maintains the
updated graph" and never prices it.  This benchmark makes the reproduction's
durability layer (`src/repro/storage/`) pay its way with three measurements:

* **WAL append overhead** — accepted updates through a journaled registry
  (`fsync` per batch, ack-implies-logged) vs the identical sequence on a
  plain in-memory registry.  Asserted below ``REPRO_PERSIST_WAL_BOUND``
  (default 1.25: < 25 % overhead per update).
* **Cold-open** — recovering a service from checkpoint + WAL suffix vs
  loading the same graph from a plain JSON document, which is what a
  non-durable boot (`serve --graph`) pays anyway.
* **Detection throughput** — batch detection over the same graph on the
  ``indexed``, ``csr``, and ``persistent`` engines, asserting byte-identical
  violation sets; the persistent engine serves reads from its in-memory
  mirror, so its wall time must stay within ``REPRO_PERSIST_DETECT_BOUND``
  (default 1.35x) of the indexed engine.

``REPRO_WRITE_BENCH_BASELINE=path`` persists the report JSON —
``benchmarks/BENCH_persistence.json`` keeps the committed baseline read by
``generate_experiments_report.py``.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time

import pytest

from repro.datasets.rules import benchmark_rules
from repro.detect import dect
from repro.experiments import build_dataset
from repro.graph.io import load_graph, save_graph
from repro.graph.updates import UpdateGenerator, apply_update
from repro.service import DetectionService

#: Workload shape: a mid-size synthetic graph (Exp-2 style) with enough
#: updates for per-update timing to dominate constant costs.
WORKLOAD = {
    "dataset": "YAGO2",
    "scale": 4.0,
    "rules_count": 24,
    "updates": 30,
    "ops_per_update": 100,
    "seed": 7,
}

#: Updates applied after the checkpoint so recovery has a WAL suffix to replay.
REPLAY_SUFFIX = 5


def _wal_bound() -> float:
    return float(os.environ.get("REPRO_PERSIST_WAL_BOUND", "1.25"))


def _detect_bound() -> float:
    return float(os.environ.get("REPRO_PERSIST_DETECT_BOUND", "1.35"))


def _build_workload():
    graph = build_dataset(WORKLOAD["dataset"], scale=WORKLOAD["scale"], seed=WORKLOAD["seed"])
    rules = benchmark_rules(graph, count=WORKLOAD["rules_count"], max_diameter=4, seed=WORKLOAD["seed"])
    generator = UpdateGenerator(seed=WORKLOAD["seed"])
    deltas = []
    evolving = graph.copy()
    for _ in range(WORKLOAD["updates"] + REPLAY_SUFFIX):
        # generate against the evolving graph so every delta applies cleanly
        # in sequence (a delta may delete an edge an earlier one inserted)
        delta = generator.generate(evolving, WORKLOAD["ops_per_update"])
        deltas.append(delta)
        evolving = apply_update(evolving, delta)
    return graph, rules, deltas


def _apply_all(registry, deltas) -> float:
    start = time.perf_counter()
    for delta in deltas:
        registry.apply_update("g", delta)
    return time.perf_counter() - start


def run_persistence_report() -> dict:
    from repro.service.registry import GraphRegistry
    from repro.storage.manager import PersistenceManager
    from repro.service.jobs import SessionManager

    graph, rules, all_deltas = _build_workload()
    deltas, suffix = all_deltas[: WORKLOAD["updates"]], all_deltas[WORKLOAD["updates"]:]
    workdir = tempfile.mkdtemp(prefix="repro-bench-persist-")
    try:
        # ---- WAL append overhead: journaled vs in-memory apply_update ----
        plain = GraphRegistry()
        SessionManager(plain)
        plain.register("g", graph.copy())
        memory_seconds = _apply_all(plain, deltas)

        durable = GraphRegistry()
        manager = SessionManager(durable)
        persistence = PersistenceManager(
            os.path.join(workdir, "data"), durable, manager, checkpoint_every=None
        )
        persistence.recover()
        durable.register("g", graph.copy())
        wal_seconds = _apply_all(durable, deltas)
        wal_ratio = wal_seconds / memory_seconds if memory_seconds else 1.0

        # ---- cold open: checkpoint + WAL replay vs plain JSON load ----
        persistence.checkpoint()
        # leave a replay suffix behind the checkpoint, as a real crash would
        for delta in suffix:
            durable.apply_update("g", delta)
        persistence.close()

        json_path = os.path.join(workdir, "graph.json")
        save_graph(durable.get("g").graph, json_path)
        start = time.perf_counter()
        load_graph(json_path)
        json_load_seconds = time.perf_counter() - start

        start = time.perf_counter()
        recovered = DetectionService(port=0, data_dir=os.path.join(workdir, "data"))
        recover_seconds = time.perf_counter() - start
        replayed = recovered.persistence.recovered["replayed"]
        assert recovered.registry.get("g").version == durable.get("g").version
        recovered.persistence.close()

        # ---- detection throughput across engines, parity enforced ----
        detect = {}
        reference = None
        for backend in ("indexed", "csr", "persistent"):
            converted = graph.with_backend(backend)
            start = time.perf_counter()
            result = dect(converted, rules)
            detect[backend] = round(time.perf_counter() - start, 4)
            violations = frozenset(result.violations)
            if reference is None:
                reference = violations
            assert violations == reference, f"{backend} diverged from indexed"
        detect_ratio = detect["persistent"] / detect["indexed"] if detect["indexed"] else 1.0

        report = {
            "workload": {
                **WORKLOAD,
                "nodes": graph.node_count(),
                "edges": graph.edge_count(),
                "violations": len(reference),
            },
            "machine": {
                "cpus": os.cpu_count() or 1,
                "platform": platform.platform(),
            },
            "wal": {
                "memory_seconds": round(memory_seconds, 4),
                "wal_seconds": round(wal_seconds, 4),
                "overhead_ratio": round(wal_ratio, 3),
                "updates": len(deltas),
            },
            "cold_open": {
                "json_load_seconds": round(json_load_seconds, 4),
                "recover_seconds": round(recover_seconds, 4),
                "replayed_records": replayed,
                "ratio_vs_json_load": round(
                    recover_seconds / json_load_seconds if json_load_seconds else 0.0, 3
                ),
            },
            "detect_wall_seconds": detect,
            "detect_persistent_vs_indexed": round(detect_ratio, 3),
            "byte_identical_violations": True,
        }
        baseline = os.environ.get("REPRO_WRITE_BENCH_BASELINE")
        if baseline:
            with open(baseline, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return report
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@pytest.mark.benchmark(group="persistence")
def test_persistence_costs(benchmark):
    report = benchmark.pedantic(run_persistence_report, rounds=1, iterations=1)
    print(json.dumps(report, indent=2, sort_keys=True))

    assert report["byte_identical_violations"] is True
    assert report["workload"]["violations"] > 0

    wal_ratio = report["wal"]["overhead_ratio"]
    assert wal_ratio <= _wal_bound(), (
        f"WAL append overhead {wal_ratio:.2f}x exceeds the {_wal_bound()}x bound "
        f"(per-update journaling must stay cheap relative to ΔG application)"
    )

    detect_ratio = report["detect_persistent_vs_indexed"]
    assert detect_ratio <= _detect_bound(), (
        f"detection on the persistent engine is {detect_ratio:.2f}x the indexed "
        f"engine (bound {_detect_bound()}x) — mirror reads should be near-free"
    )


if __name__ == "__main__":
    print(json.dumps(run_persistence_report(), indent=2, sort_keys=True))
