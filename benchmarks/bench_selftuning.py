"""Self-tuning execution: adaptive replanning + warm worker pools (no figure analogue).

Two claims of the self-tuning executor are measured by one driver
(:func:`repro.experiments.run_selftuning`):

* **adaptive replanning** — on a correlated-hub workload whose statistics
  mislead the static planner (a wide, premise-dead expansion step ordered
  after a narrow, live one), the observe/replan loop must cut
  ``total_operations()`` by at least ``REPRO_SELFTUNING_OPS_BOUND``
  (default 1.2x) while producing a byte-identical violation set;
* **warm worker pools** — repeating one detection request through the
  service path (``execution="processes"`` jobs run on pool threads, so
  workers are spawned, the expensive regime), a shared
  :class:`~repro.detect.parallel.WarmExecutorPool` must make the steady-
  state per-job latency at least ``REPRO_SELFTUNING_WARM_BOUND`` (default
  2.0x) better than paying worker start-up + runtime loading per job,
  with identical violation records.

The adaptive and parity assertions are unconditional (deterministic);
the wall-clock warm bound is only enforced when the machine has at least
two CPUs.  ``REPRO_WRITE_BENCH_BASELINE=path`` persists the report JSON —
``benchmarks/BENCH_selftuning.json`` keeps the committed baseline read by
``generate_experiments_report.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import run_selftuning


def _ops_bound() -> float:
    return float(os.environ.get("REPRO_SELFTUNING_OPS_BOUND", "1.2"))


def _warm_bound() -> float:
    return float(os.environ.get("REPRO_SELFTUNING_WARM_BOUND", "2.0"))


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="selftuning")
def test_selftuning_adaptive_and_warm_pool(benchmark):
    report = benchmark.pedantic(run_selftuning, rounds=1, iterations=1)
    print(json.dumps(report, indent=2, sort_keys=True))

    adaptive = report["adaptive"]
    assert adaptive["byte_identical_violations"] is True
    assert adaptive["workload"]["violations"] > 0
    ratio = adaptive["operations_ratio"]
    assert ratio >= _ops_bound(), (
        f"adaptive replanning saved only {ratio:.2f}x operations "
        f"(bound {_ops_bound()}x)"
    )

    warm = report["warm_pool"]
    assert warm["identical_violation_records"] is True
    assert warm["pool"]["hits"] >= warm["jobs"] - 1
    speedup = warm["warm_speedup"]
    if _available_cpus() >= 2:
        assert speedup >= _warm_bound(), (
            f"warm pool reached only {speedup:.2f}x over cold jobs "
            f"(bound {_warm_bound()}x)"
        )
        print(f"warm pool {speedup:.2f}x, adaptive {ratio:.2f}x fewer operations")
    else:  # pragma: no cover - single-core runner
        print(
            f"NOTE: single CPU — warm wall-clock bound skipped "
            f"(measured {speedup:.2f}x); parity verified"
        )
