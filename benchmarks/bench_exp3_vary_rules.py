"""Exp-3 — Figures 4(f) and 4(g): impact of the number of rules ‖Σ‖.

The paper varies ‖Σ‖ from 50 to 100 on DBpedia and YAGO2 with |ΔG| = 15%.
Expected shape: every algorithm takes longer with more rules, and the
incremental algorithms scale well (stay below their batch counterparts).
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp3_vary_rules

RULE_COUNTS = (10, 20, 30, 40, 50, 60)


def _run_panel(benchmark, bench_config, dataset: str):
    series = benchmark.pedantic(
        run_exp3_vary_rules,
        kwargs={"dataset": dataset, "rule_counts": RULE_COUNTS, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print_series(series)
    smallest, largest = min(RULE_COUNTS), max(RULE_COUNTS)
    assert series.values[largest]["Dect"] >= series.values[smallest]["Dect"]
    assert series.values[largest]["IncDect"] >= series.values[smallest]["IncDect"]
    for count in RULE_COUNTS:
        assert series.values[count]["IncDect"] < series.values[count]["Dect"]
    return series


@pytest.mark.benchmark(group="exp3-vary-rules")
def test_fig4f_dbpedia(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "DBpedia")


@pytest.mark.benchmark(group="exp3-vary-rules")
def test_fig4g_yago2(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "YAGO2")
