"""Exp-4 — Figure 4(m): sensitivity to the communication-latency parameter C.

The paper tunes C from 20 to 100 on Pokec (p = 8, intvl = 45) and reports an
interior optimum around C = 80: a small C makes the splitter too eager (it
broadcasts work that was cheap to do locally), a large C makes it too shy
(stragglers stay local).  PIncDect is compared against PIncDect_nb, the
variant without periodic redistribution.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp4_vary_latency

LATENCIES = (20, 40, 60, 80, 100)


@pytest.mark.benchmark(group="exp4-vary-latency")
def test_fig4m_pokec_latency(benchmark, bench_config):
    series = benchmark.pedantic(
        run_exp4_vary_latency,
        kwargs={"dataset": "Pokec", "latencies": LATENCIES, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print_series(series)
    # the full strategy stays comparable to the no-redistribution ablation at every C;
    # on the scaled-down workloads its monitoring overhead may cost up to 15 %
    # (see EXPERIMENTS.md, known deviations)
    for latency in LATENCIES:
        assert series.values[latency]["PIncDect"] <= series.values[latency]["PIncDect_nb"] * 1.15
    # the best latency is an interior point or at least not the most eager setting
    best = min(LATENCIES, key=lambda c: series.values[c]["PIncDect"])
    print(f"best C for PIncDect: {best}")
