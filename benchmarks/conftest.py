"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's Section 7 and
prints the corresponding series (in simulated work units — see DESIGN.md for
the substitution of cluster wall-clock by deterministic cost).  Benchmarks
run each experiment exactly once (``benchmark.pedantic(rounds=1)``): the
drivers are deterministic, so repeating them only wastes time.

Set ``REPRO_SCALE`` to enlarge every dataset, and ``REPRO_BENCH_RULES`` to
change the number of NGDs per rule set (default 24; the paper uses 50–100 on
a 20-machine cluster).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentConfig  # noqa: E402  (path inserted above)


def bench_rules_count() -> int:
    """Number of NGDs per benchmark rule set (``REPRO_BENCH_RULES``, default 24)."""
    return int(os.environ.get("REPRO_BENCH_RULES", "24"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared experiment configuration used by every benchmark."""
    return ExperimentConfig(rules_count=bench_rules_count(), max_diameter=5, processors=8)


@pytest.fixture(autouse=True)
def _emit_series_tables(capfd):
    """Re-emit each benchmark's printed series after the test finishes.

    pytest captures stdout by default, which would hide the per-figure tables
    the benchmarks print; this fixture forwards them to the real stdout so
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records the
    reproduced series alongside the timing table.
    """
    yield
    out, _ = capfd.readouterr()
    if out.strip():
        with capfd.disabled():
            sys.stdout.write(out)
            sys.stdout.flush()
