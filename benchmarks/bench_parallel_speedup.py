"""Wall-clock speedup of the multi-process execution backend (no figure analogue).

The paper's Figures 4(i)–(n) report *measured* cluster speedup; until this
benchmark the reproduction only ever reported the simulator's virtual
makespan.  Here the same skewed Exp-4-style workload runs four ways —
serial Dect, simulated PDect (the deterministic oracle, recorded for the
report), and the real process backend at 1 and ``REPRO_SPEEDUP_WORKERS``
workers — asserting byte-identical violation sets across all of them and
measuring the wall-clock ratio.

Assertions:

* parity is unconditional — the sets must match on any machine;
* the speedup bound (``REPRO_SPEEDUP_BOUND``, default 2.0; CI relaxes to
  1.3 to absorb runner noise) is only enforced when the machine actually
  has at least ``REPRO_SPEEDUP_WORKERS`` CPUs — a single-core container
  cannot exhibit wall-clock parallelism, so there the benchmark still
  verifies parity and records the numbers but skips the ratio assertion.

``REPRO_WRITE_BENCH_BASELINE=path`` persists the report JSON —
``benchmarks/BENCH_parallel.json`` keeps the committed baseline read by
``generate_experiments_report.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import run_parallel_speedup


def _workers() -> int:
    return int(os.environ.get("REPRO_SPEEDUP_WORKERS", "4"))


def _bound() -> float:
    return float(os.environ.get("REPRO_SPEEDUP_BOUND", "2.0"))


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="parallel-speedup")
def test_process_backend_speedup(benchmark):
    workers = _workers()
    report = benchmark.pedantic(
        run_parallel_speedup,
        kwargs={
            "processors": workers,
            "entities": int(os.environ.get("REPRO_SPEEDUP_ENTITIES", "4000")),
            "rules_count": int(os.environ.get("REPRO_BENCH_RULES", "36")),
        },
        rounds=1,
        iterations=1,
    )
    print(json.dumps(report, indent=2, sort_keys=True))

    # parity is the hard floor on every machine: the driver raises if any
    # execution disagreed, and the report records that the check ran
    assert report["byte_identical_violations"] is True
    assert report["workload"]["violations"] > 0

    cpus = _available_cpus()
    speedup = report["speedup_vs_serial"]
    if cpus >= workers:
        bound = _bound()
        assert speedup >= bound, (
            f"process backend reached only {speedup:.2f}x at {workers} workers "
            f"on {cpus} CPUs (bound {bound}x)"
        )
        print(f"speedup {speedup:.2f}x at {workers} workers >= bound {_bound()}x")
    else:
        print(
            f"NOTE: only {cpus} CPU(s) available for {workers} workers — "
            f"wall-clock bound skipped (measured {speedup:.2f}x); parity verified"
        )
