"""Exp-4 — Figures 4(i)–4(l): parallel scalability with the number of processors.

The paper varies p from 4 to 20 on all four graphs (‖Σ‖ = 50, |ΔG| = 15%).
Expected shape: PIncDect and PDect both speed up as p grows (paper: ≈3.7×
from 4 to 20 processors), PIncDect stays below PDect, and the hybrid
balancing variant is at least as good as running with neither mechanism.
"""

from __future__ import annotations

import pytest

from repro.experiments import print_series, run_exp4_vary_processors, speedup_summary

PROCESSORS = (4, 8, 12, 16, 20)
ALGORITHMS = ("PDect", "PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO")

PANELS = {
    "test_fig4i_dbpedia": "DBpedia",
    "test_fig4j_yago2": "YAGO2",
    "test_fig4k_pokec": "Pokec",
    "test_fig4l_synthetic": "Synthetic",
}


def _run_panel(benchmark, bench_config, dataset: str):
    series = benchmark.pedantic(
        run_exp4_vary_processors,
        kwargs={
            "dataset": dataset,
            "processor_counts": PROCESSORS,
            "config": bench_config,
            "algorithms": ALGORITHMS,
        },
        rounds=1,
        iterations=1,
    )
    print_series(series)
    print(speedup_summary(series, "PDect", "PIncDect"))
    # more processors reduce the makespan of both parallel algorithms (4 → 20)
    assert series.values[20]["PIncDect"] < series.values[4]["PIncDect"]
    assert series.values[20]["PDect"] < series.values[4]["PDect"]
    # the incremental algorithm stays below the batch one at every p
    for processors in PROCESSORS:
        assert series.values[processors]["PIncDect"] < series.values[processors]["PDect"]
    # the hybrid strategy is at least comparable to disabling both mechanisms; on the
    # scaled-down low-skew workloads its benefit is small and its monitoring overhead is
    # allowed to cost up to 15 % (see EXPERIMENTS.md, known deviations)
    assert series.values[20]["PIncDect"] <= series.values[20]["PIncDect_NO"] * 1.15
    return series


@pytest.mark.benchmark(group="exp4-vary-processors")
def test_fig4i_dbpedia(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "DBpedia")


@pytest.mark.benchmark(group="exp4-vary-processors")
def test_fig4j_yago2(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "YAGO2")


@pytest.mark.benchmark(group="exp4-vary-processors")
def test_fig4k_pokec(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "Pokec")


@pytest.mark.benchmark(group="exp4-vary-processors")
def test_fig4l_synthetic(benchmark, bench_config):
    _run_panel(benchmark, bench_config, "Synthetic")
