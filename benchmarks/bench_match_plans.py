"""Match-planner benchmark: planned vs static ordering, indexed vs CSR.

Two claims of the compile-then-execute refactor are measured here on the
skewed-label synthetic workload:

* **planning wins** — the cost-based variable order (start from the rarest
  label, anchor through label-filtered adjacency, fire literals at their
  earliest depth) performs at least 1.5× fewer algorithmic work units
  (``MatchStatistics.total_operations()``) than the static
  ``Pattern.matching_order`` pipeline, with byte-identical violation sets;
* **backend parity** — the planner produces identical violation sets and
  identical operation counts on every storage backend (dict, indexed, and
  the frozen CSR array store), while the CSR store serves the planner's
  batch scans from compact arrays.

Run standalone (``python benchmarks/bench_match_plans.py``) or through
pytest; ``generate_experiments_report.py`` records the measured ratios in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest  # noqa: E402

from repro.core.ngd import NGD  # noqa: E402
from repro.datasets.synthetic import synthetic_graph  # noqa: E402
from repro.detect.session import DetectionOptions, Detector  # noqa: E402
from repro.graph.graph import Graph  # noqa: E402
from repro.graph.pattern import Pattern  # noqa: E402

#: The skewed-label synthetic workload: a large common-label population, a
#: tiny rare-label population, and rules declared common-side-first so the
#: static order must scan the big bucket.
WORKLOAD = {"accounts": 4000, "flags": 16, "flag_stride": 10, "seed": 3}

#: Acceptance bar: planned ordering must do >= this factor fewer operations.
MIN_OPERATION_RATIO = 1.5


def skewed_label_graph(store=None) -> Graph:
    """Build the skewed workload graph: |account| >> |flag|."""
    graph = Graph("skewed", store=store)
    accounts = WORKLOAD["accounts"]
    flags = WORKLOAD["flags"]
    for index in range(accounts):
        graph.add_node(f"acct{index}", "account", {"val": index % 211})
    for index in range(flags):
        graph.add_node(f"flag{index}", "flag", {"val": index * 7})
    for index in range(0, accounts, WORKLOAD["flag_stride"]):
        graph.add_edge(f"acct{index}", f"flag{index % flags}", "flagged")
        graph.add_edge(f"acct{index}", f"acct{(index + 1) % accounts}", "peer")
    return graph


def skewed_rules() -> list[NGD]:
    flagged = Pattern.from_edges(
        "flagged",
        nodes=[("x", "account"), ("y", "flag")],
        edges=[("x", "y", "flagged")],
    )
    chain = Pattern.from_edges(
        "chain",
        nodes=[("x", "account"), ("y", "account"), ("z", "flag")],
        edges=[("x", "y", "peer"), ("y", "z", "flagged")],
    )
    return [
        NGD.from_text(flagged, "x.val >= 0", "y.val < x.val", name="flag_order"),
        NGD.from_text(chain, "x.val > 10", "x.val + y.val > z.val", name="peer_chain"),
    ]


def measure_match_plans() -> dict:
    """Measure planned vs static operations and indexed vs CSR wall time."""
    rules = skewed_rules()
    indexed = skewed_label_graph(store="indexed")

    planned = Detector(rules, engine="batch", options=DetectionOptions(use_planner=True))
    static = Detector(rules, engine="batch", options=DetectionOptions(use_planner=False))

    planned_result = planned.run(indexed)
    static_result = static.run(indexed)
    operation_ratio = static_result.stats.total_operations() / max(
        1, planned_result.stats.total_operations()
    )

    violations = {"indexed": planned_result.violations.to_json()}
    seconds = {}
    for backend in ("indexed", "csr", "dict"):
        graph = indexed if backend == "indexed" else indexed.with_backend(backend)
        if backend == "csr":
            list(graph.successors(next(iter(graph.node_ids()))))  # freeze outside the timer
        detector = Detector(rules, engine="batch", options=DetectionOptions(use_planner=True))
        best = float("inf")
        result = None
        for _ in range(3):
            started = time.perf_counter()
            result = detector.run(graph)
            best = min(best, time.perf_counter() - started)
        seconds[backend] = best
        violations[backend] = result.violations.to_json()

    return {
        "workload": dict(WORKLOAD),
        "planned_operations": planned_result.stats.total_operations(),
        "static_operations": static_result.stats.total_operations(),
        "operation_ratio": operation_ratio,
        "planned_cost": planned_result.cost,
        "static_cost": static_result.cost,
        "violations": len(planned_result.violations),
        "violations_identical": len(set(violations.values())) == 1
        and planned_result.violations.to_json() == static_result.violations.to_json(),
        "seconds": seconds,
        "csr_vs_indexed": seconds["indexed"] / seconds["csr"] if seconds["csr"] else 0.0,
    }


def test_planned_ordering_beats_static_ordering():
    """Planner >= 1.5x fewer total_operations, identical violations everywhere."""
    measured = measure_match_plans()
    assert measured["violations"] > 0, "workload must actually produce violations"
    assert measured["violations_identical"], measured
    assert measured["operation_ratio"] >= MIN_OPERATION_RATIO, (
        f"planned ordering only {measured['operation_ratio']:.2f}x fewer operations "
        f"(bound {MIN_OPERATION_RATIO}x): {measured}"
    )


def test_exp2_workload_planner_not_worse():
    """On the unskewed Exp-2 synthetic workload the planner must not regress."""
    graph = synthetic_graph(num_nodes=4000, num_edges=8000, seed=2, name="exp2-plan")
    from repro.datasets.rules import benchmark_rules

    rules = benchmark_rules(graph, count=12, max_diameter=4, seed=0)
    planned = Detector(rules, engine="batch", options=DetectionOptions(use_planner=True)).run(graph)
    static = Detector(rules, engine="batch", options=DetectionOptions(use_planner=False)).run(graph)
    assert planned.violations.to_json() == static.violations.to_json()
    assert planned.stats.total_operations() <= static.stats.total_operations() * 1.05, (
        planned.stats.total_operations(),
        static.stats.total_operations(),
    )


@pytest.mark.benchmark(group="match-plans")
def test_match_plan_benchmark(benchmark):
    measured = benchmark.pedantic(measure_match_plans, rounds=1, iterations=1)
    print(
        f"\nplanned {measured['planned_operations']} ops vs static "
        f"{measured['static_operations']} ops ({measured['operation_ratio']:.2f}x), "
        f"csr {measured['seconds']['csr'] * 1000:.1f} ms vs indexed "
        f"{measured['seconds']['indexed'] * 1000:.1f} ms"
    )
    assert measured["operation_ratio"] >= MIN_OPERATION_RATIO


if __name__ == "__main__":
    report = measure_match_plans()
    print(
        f"planned {report['planned_operations']} ops, static {report['static_operations']} ops "
        f"-> {report['operation_ratio']:.2f}x fewer; "
        f"violations {report['violations']} (identical: {report['violations_identical']}); "
        + ", ".join(f"{k} {v * 1000:.1f} ms" for k, v in report["seconds"].items())
    )
