"""Micro-benchmark: the ``Detector`` session/sink indirection is (nearly) free.

The session API routes every batch run through the same generator kernel the
legacy functions drained directly, adding one ``Detector`` construction, one
options/budget resolution, and a sink notification per violation.  This
benchmark measures that indirection on the Exp-2 synthetic workload and
asserts it stays below 5 % — i.e. the API redesign did not tax the hot path.

Run standalone (``python benchmarks/bench_detector_overhead.py``) or through
pytest; ``generate_experiments_report.py`` records the measured ratio in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.rules import benchmark_rules  # noqa: E402
from repro.datasets.synthetic import synthetic_graph  # noqa: E402
from repro.detect import (  # noqa: E402
    CollectingSink,
    Detector,
    drain,
)
from repro.detect.dect import iter_dect  # noqa: E402

#: Exp-2 synthetic workload (Figure 4(e) shape at laptop scale).
WORKLOAD = {"num_nodes": 16_000, "num_edges": 32_000, "rules_count": 24, "seed": 1}

#: Acceptance bound on the relative wall-time overhead of the session path.
#: Override with REPRO_OVERHEAD_BOUND on very noisy machines (e.g. shared CI
#: runners); the identity assertions are unconditional either way.
MAX_OVERHEAD = float(os.environ.get("REPRO_OVERHEAD_BOUND", "0.05"))


def _timed(callable_) -> float:
    started = time.perf_counter()
    callable_()
    return time.perf_counter() - started


def measure_overhead(rounds: int = 5) -> dict:
    """Time the raw kernel against the full session path on the Exp-2 workload.

    Returns a dict with the best-of-``rounds`` wall times, the relative
    ``overhead`` of the session path, and the (identical) violation counts
    and cost measures of both paths.  Timing alternates would-be-identical
    runs and keeps the per-path minimum, which cancels scheduler noise.
    """
    graph = synthetic_graph(
        num_nodes=WORKLOAD["num_nodes"],
        num_edges=WORKLOAD["num_edges"],
        seed=WORKLOAD["seed"],
        name="overhead-workload",
    )
    rules = benchmark_rules(
        graph, count=WORKLOAD["rules_count"], max_diameter=5, seed=0
    )

    # the baseline the session wraps: drain the kernel generator directly
    baseline_result = drain(iter_dect(graph, rules))
    # the full session path: Detector construction + options + a live sink
    session_detector = Detector(rules, engine="batch", sinks=[CollectingSink()])
    session_result = session_detector.run(graph)

    baseline_time = session_time = float("inf")
    for _ in range(rounds):
        baseline_time = min(baseline_time, _timed(lambda: drain(iter_dect(graph, rules))))
        session_time = min(
            session_time,
            _timed(lambda: Detector(rules, engine="batch", sinks=[CollectingSink()]).run(graph)),
        )

    return {
        "workload": dict(WORKLOAD),
        "baseline_seconds": baseline_time,
        "session_seconds": session_time,
        "overhead": session_time / baseline_time - 1.0,
        "baseline_cost": baseline_result.cost,
        "session_cost": session_result.cost,
        "violations": len(session_result.violations),
        "costs_identical": baseline_result.cost == session_result.cost,
        "violations_identical": baseline_result.violations == session_result.violations,
    }


def test_session_indirection_overhead():
    """Session runs are bit-identical to the kernel and < 5 % slower.

    The timing half retries a few times before failing: the true indirection
    is ~0–2 %, so a single noisy scheduler burst should not fail the gate,
    while a genuine regression exceeds the bound on every attempt.
    """
    measured = measure_overhead()
    assert measured["costs_identical"], measured
    assert measured["violations_identical"], measured
    assert measured["violations"] > 0, "workload must actually produce violations"
    for _ in range(2):
        if measured["overhead"] < MAX_OVERHEAD:
            break
        measured = measure_overhead()
    assert measured["overhead"] < MAX_OVERHEAD, (
        f"session/sink indirection costs {measured['overhead']:.1%} "
        f"(bound {MAX_OVERHEAD:.0%}): {measured}"
    )


if __name__ == "__main__":
    report = measure_overhead()
    print(
        f"baseline {report['baseline_seconds'] * 1000:.1f} ms, "
        f"session {report['session_seconds'] * 1000:.1f} ms, "
        f"overhead {report['overhead']:+.2%} "
        f"({report['violations']} violations, cost {report['session_cost']:.0f})"
    )
