"""Parallel scaling demo: PIncDect on the simulated cluster, 4 → 20 processors.

Reproduces the shape of Figures 4(i)–(l) interactively: the incremental
workload of a 15% batch update is detected with PIncDect at increasing
processor counts and with each balancing ablation, and the resulting
simulated makespans are printed side by side.

Run with::

    python examples/parallel_scaling.py [dataset]

where ``dataset`` is one of DBpedia, YAGO2, Pokec, Synthetic (default Pokec —
the most skewed workload, where balancing matters most).
"""

from __future__ import annotations

import os
import sys

from repro import UpdateGenerator, apply_update, inc_dect, pinc_dect
from repro.datasets.rules import benchmark_rules
from repro.detect import BalancingPolicy, DetectionOptions, Detector
from repro.detect.parallel.executor import fault_tolerance_counters
from repro.experiments import build_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "Pokec"
    print(f"building the {dataset} analogue ...")
    graph = build_dataset(dataset)
    rules = benchmark_rules(graph, count=24, max_diameter=5)
    delta = UpdateGenerator(seed=7).generate(graph, size=max(1, graph.edge_count() * 15 // 100))
    updated = apply_update(graph, delta)
    print(f"  |V|={graph.node_count()}  |E|={graph.edge_count()}  |ΔG|={len(delta)}  ‖Σ‖={len(rules)}")

    sequential = inc_dect(graph, rules, delta, graph_after=updated)
    print(f"\nIncDect (sequential yardstick): cost {sequential.cost:.0f}, ΔVio = {sequential.total_changes()}")

    print("\nPIncDect makespan vs number of processors (hybrid balancing):")
    for processors in (4, 8, 12, 16, 20):
        result = pinc_dect(graph, rules, delta, processors=processors, graph_after=updated)
        speedup = sequential.cost / result.cost if result.cost else float("inf")
        print(f"  p = {processors:>2}: makespan {result.cost:10.0f}   ({speedup:4.1f}x vs IncDect)")

    print("\nBalancing ablations at p = 8 (paper: the hybrid strategy wins):")
    policies = {
        "PIncDect (hybrid)": BalancingPolicy.hybrid(),
        "PIncDect_ns (no splitting)": BalancingPolicy.no_splitting(),
        "PIncDect_nb (no rebalancing)": BalancingPolicy.no_rebalancing(),
        "PIncDect_NO (neither)": BalancingPolicy.none(),
    }
    for name, policy in policies.items():
        result = pinc_dect(graph, rules, delta, processors=8, policy=policy, graph_after=updated)
        print(f"  {name:<30} makespan {result.cost:10.0f}")

    print("\nReal multi-process execution (execution='processes', wall-clock):")
    serial_batch = Detector(rules, engine="batch")
    serial_result = serial_batch.run(graph)
    print(f"  serial Dect:     {serial_result.wall_time:6.2f}s wall")
    for processors in (1, 4):
        detector = Detector(
            rules,
            engine="parallel",
            processors=processors,
            options=DetectionOptions(execution="processes"),
        )
        result = detector.run(graph)
        same = result.violations == serial_result.violations
        print(
            f"  processes p = {processors}: {result.wall_time:6.2f}s wall "
            f"(violations identical: {same})"
        )
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print(f"  ({cpus} CPU(s) available — wall-clock speedup needs several)")

    print("\nSurviving a worker crash (REPRO_FAULTS=worker_death, same answer):")
    os.environ["REPRO_FAULTS"] = "worker_death:worker=0,epoch=0,after=3"
    try:
        before = fault_tolerance_counters()["worker_restarts"]
        detector = Detector(
            rules,
            engine="parallel",
            processors=2,
            options=DetectionOptions(execution="processes"),
        )
        result = detector.run(graph)
        restarts = fault_tolerance_counters()["worker_restarts"] - before
        same = result.violations == serial_result.violations
        print(
            f"  worker 0 SIGKILLed after 3 units: {restarts} restart(s), "
            f"degraded={result.degraded}, violations identical: {same}"
        )
    finally:
        del os.environ["REPRO_FAULTS"]


if __name__ == "__main__":
    main()
