"""Observability quickstart: span trees, the metrics registry, and /metrics.

Run with::

    python examples/observability_quickstart.py

The script exercises the observability subsystem (`src/repro/obs/`,
``docs/ARCHITECTURE.md`` "Observability") end to end, in-process:

1. run a detection through the :class:`~repro.detect.session.Detector`
   session and render the run's span tree — the same output as
   ``repro-detect run --profile``;
2. read per-rule/per-step counters from the process-wide registry;
3. start the HTTP service with the access log on, stream a detection, and
   scrape ``GET /metrics`` (Prometheus text) and ``GET /debug/traces``
   while correlating the stream via its ``X-Repro-Trace`` trace id.

Everything is stdlib-only and observe-only: set ``REPRO_OBS=off`` and the
same script still detects the same violations — just with no-op stubs in
place of the registry and recorder.
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g2
from repro.detect import Detector
from repro.obs.tracing import format_span_tree
from repro.service import DetectionService, ServiceClient


def main() -> None:
    obs.configure(True)  # fresh registry + recorder (normally REPRO_OBS decides)

    # -- 1. a traced detection run and its span tree ------------------------
    print("=== span tree of one Detector.run (repro-detect run --profile) ===")
    graph = figure1_g2()
    result = Detector(example_rules(), engine="batch").run(graph)
    print(f"{result.violation_count()} violation(s), trace {result.trace_id}")
    print(format_span_tree(obs.traces(), result.trace_id))

    # -- 2. the metrics registry --------------------------------------------
    print("\n=== registry counters after the run ===")
    registry = obs.metrics()
    print(f"runs:       {registry.value('repro_detect_runs_total', {'algorithm': 'Dect'}):.0f}")
    print(f"candidates: {registry.total('repro_detect_candidates_total'):.0f}")
    print(f"violations: {registry.total('repro_detect_violations_total'):.0f}")
    # literal evaluations are attributed to the closure-compiled evaluator
    # unless REPRO_COMPILED_EVAL=off / DetectionOptions(compiled=False)
    # pins the interpreted path (see ARCHITECTURE.md "Compiled evaluation")
    for mode in ("compiled", "interpreted"):
        count = registry.value("repro_literal_evals_total", {"mode": mode})
        if count:
            print(f"literal evaluations ({mode}): {count:.0f}")

    # -- 3. the service surfaces --------------------------------------------
    service = DetectionService(port=0, access_log=True)  # serve without --quiet
    service.manager.register_catalog("example", example_rules())
    with service:
        print(f"\nservice listening on {service.url} (access log on stderr)")
        client = ServiceClient(service.url)
        client.register_graph("yago", figure1_g2())

        print("\n=== NDJSON stream with its trace id ===")
        trace_id = None
        for record in client.stream_detect("yago", catalog="example"):
            if record["type"] == "summary":
                trace_id = record["trace_id"]
                print(f"  summary: {record['violation_count']} violation(s), trace {trace_id}")
            else:
                print(f"  violation of {record['rule']}")

        print("\n=== GET /metrics (Prometheus text, first lines) ===")
        with urllib.request.urlopen(f"{service.url}/metrics") as response:
            text = response.read().decode("utf-8")
        interesting = [
            line
            for line in text.splitlines()
            if line.startswith(("repro_jobs_", "repro_detect_runs", "repro_http_requests"))
        ]
        print("\n".join(f"  {line}" for line in interesting))

        print("\n=== GET /debug/traces — the stream's server-side spans ===")
        with urllib.request.urlopen(f"{service.url}/debug/traces?limit=100") as response:
            document = json.loads(response.read())
        spans = [span for span in document["spans"] if span["trace_id"] == trace_id]
        for span in spans:
            print(f"  {span['name']} ({(span['duration'] or 0) * 1000:.2f} ms)")

        health = client.health()
        print(
            f"\n/health: observability={health['observability']} "
            f"uptime={health['uptime_seconds']:.1f}s"
        )

    assert result.violation_count() == 1
    assert trace_id is not None and spans, "the stream's trace must be recorded"
    print("\nobservability quickstart ok")


if __name__ == "__main__":
    main()
