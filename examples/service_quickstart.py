"""Service quickstart: serve, stream, update, and watch a continuous session.

Run with::

    python examples/service_quickstart.py

The script starts the detection service in-process (the same server
``repro-detect serve`` runs), registers the Figure 1 population graph and
the example rule catalog, then drives it through
:class:`repro.service.ServiceClient`:

1. stream a budgeted detection as NDJSON records;
2. open a *continuous session* that keeps ``Vio(Σ, G)`` current;
3. post the curator's repair as a ``BatchUpdate`` (version 1 → 2);
4. read the per-version ``ViolationDelta`` the session recorded.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BatchUpdate
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g2
from repro.graph.updates import NodePayload
from repro.service import DetectionService, ServiceClient


def main() -> None:
    service = DetectionService(port=0)  # ephemeral port; repro-detect serve does the same
    service.manager.register_catalog("example", example_rules())

    with service:
        print(f"service listening on {service.url}")
        client = ServiceClient(service.url)

        # -- register the Figure 1 graph (Bhonpur's population counts) ------
        info = client.register_graph("yago", figure1_g2())
        print(f"registered graph {info['name']!r}: {info['nodes']} nodes @ version {info['version']}")

        # -- 1. stream a budgeted detection as NDJSON -----------------------
        print("\n=== streaming detection (max_violations=5) ===")
        for record in client.stream_detect("yago", catalog="example", max_violations=5):
            if record["type"] == "violation":
                assignment = dict(zip(record["variables"], record["nodes"]))
                print(f"  violation of {record['rule']}: {assignment}")
            else:
                print(
                    f"  summary: {record['violation_count']} violation(s) at "
                    f"graph version {record['graph_version']}, "
                    f"stopped_early={record['stopped_early']}"
                )

        # -- 2. open a continuous session -----------------------------------
        session = client.create_session("yago", catalog="example")
        print(
            f"\ncontinuous session {session['session']} opened at version "
            f"{session['base_version']} with {session['violation_count']} violation(s)"
        )

        # -- 3. the curator repairs the total-population fact ----------------
        repair = (
            BatchUpdate()
            .delete("Bhonpur", "total", "populationTotal")
            .insert(
                "Bhonpur",
                "total_corrected",
                "populationTotal",
                target_payload=NodePayload("integer", {"val": 600 + 722}),
            )
        )
        outcome = client.post_update("yago", repair)
        print(f"applied repair: graph now at version {outcome['version']}")

        # -- 4. the session recorded the per-version ViolationDelta ----------
        deltas = client.session_deltas(session["session"], since=session["base_version"])
        for delta in deltas["deltas"]:
            print(
                f"  version {delta['version']}: "
                f"+{len(delta['introduced'])} / -{len(delta['removed'])} violation(s)"
            )
            for violation in delta["removed"]:
                print(f"    repaired: {violation['rule']} on {violation['nodes'][0]}")

        state = client.session_state(session["session"])
        print(
            f"session now tracks version {state['current_version']} with "
            f"{state['violation_count']} violation(s) — the graph is clean"
        )

    print("\nservice stopped cleanly")


if __name__ == "__main__":
    main()
