"""Knowledge-base cleaning: batch detection once, incremental detection forever after.

This is the workload the paper's introduction motivates: a large knowledge
base (here the DBpedia-like synthetic analogue) is checked against a set of
data-quality NGDs once, and then, as the KB keeps changing, only the *changes*
to the violation set are recomputed.

Run with::

    python examples/knowledge_base_cleaning.py
"""

from __future__ import annotations

from repro import UpdateGenerator, apply_update, dect, inc_dect
from repro.datasets.kb import dbpedia_like
from repro.datasets.rules import benchmark_rules


def main() -> None:
    print("building the DBpedia-like knowledge graph ...")
    graph = dbpedia_like(scale=0.5, error_rate=0.03)
    print(f"  |V| = {graph.node_count()}, |E| = {graph.edge_count()}")

    rules = benchmark_rules(graph, count=20, max_diameter=4)
    print(f"  using {len(rules)} data-quality NGDs (dΣ = {rules.diameter()})")

    print("\n--- initial batch detection (Dect) ---")
    batch = dect(graph, rules)
    print(f"  violations found: {batch.violation_count()}  (cost {batch.cost:.0f} work units)")

    print("\n--- the knowledge base evolves: three rounds of updates ---")
    violations = batch.violations
    current = graph
    generator = UpdateGenerator(seed=7)
    for round_number in range(1, 4):
        delta = generator.generate(current, size=max(1, current.edge_count() // 20))
        updated = apply_update(current, delta)
        incremental = inc_dect(current, rules, delta, graph_after=updated)
        violations = violations.apply_delta(incremental.delta)
        ratio = batch.cost / incremental.cost if incremental.cost else float("inf")
        print(
            f"  round {round_number}: |ΔG| = {len(delta)} edges, "
            f"ΔVio = +{len(incremental.introduced())}/-{len(incremental.removed())}, "
            f"cost {incremental.cost:.0f} ({ratio:.1f}x cheaper than re-running Dect)"
        )
        current = updated

    print("\n--- sanity check: incremental bookkeeping matches recomputation ---")
    recomputed = dect(current, rules).violations
    print(f"  maintained violation set size: {len(violations)}")
    print(f"  recomputed violation set size: {len(recomputed)}")
    print(f"  identical: {violations == recomputed}")


if __name__ == "__main__":
    main()
