"""Quickstart: catch the four inconsistencies of Figure 1 with NGDs φ1–φ4.

Run with::

    python examples/quickstart.py

The script builds the four example graphs from the paper's introduction
(Yago dates, Yago population counts, DBpedia population ranks, Twitter fake
accounts), streams the violations of the corresponding NGDs through one
:class:`repro.Detector` session, and then shows the same session's
incremental mode reacting to a repair.
"""

from __future__ import annotations

from repro import BatchUpdate, Detector, RuleSet
from repro.core import phi1, phi2, phi3, phi4
from repro.datasets.figure1 import figure1_graphs


def main() -> None:
    rules = RuleSet([phi1(), phi2(), phi3(), phi4()], name="example-rules")
    graphs = figure1_graphs()

    # one session, reused across every graph and both detection modes
    detector = Detector(rules, engine="auto")

    print("=== Batch detection on the Figure 1 graphs ===")
    for name, graph in graphs.items():
        # stream() yields each violation the moment its work unit completes
        found = sorted(detector.stream(graph), key=str)
        print(f"\n{name} ({graph.name}): {len(found)} violation(s)")
        for violation in found:
            print(f"  {violation}")

    print("\n=== Incremental detection: repairing G2 ===")
    g2 = graphs["G2"]
    # the curator deletes the wrong total-population fact and records the correct one
    repair = (
        BatchUpdate()
        .delete("Bhonpur", "total", "populationTotal")
        .insert("Bhonpur", "total_corrected", "populationTotal")
    )
    # the new value node must exist before it can be linked
    g2_with_value = g2.copy()
    g2_with_value.add_node("total_corrected", "integer", {"val": 600 + 722})
    result = detector.run_incremental(g2_with_value, repair)
    print(f"violations removed by the repair: {len(result.removed())}")
    print(f"violations introduced by the repair: {len(result.introduced())}")
    for violation in result.removed():
        print(f"  - {violation}")


if __name__ == "__main__":
    main()
