"""Rule discovery and static analysis: mine NGDs from a graph, then reason about them.

The paper mines its benchmark rules from the data (Section 7, "NGDs") and
motivates the satisfiability / implication analyses as the way to sanity-check
and minimise such mined rule sets before using them for cleaning.  This
example runs that pipeline end to end on a synthetic knowledge graph:

1. mine candidate NGDs with the levelwise miner;
2. check that the mined set is satisfiable (it always should be — it was
   mined from an actual graph);
3. remove redundant rules with the implication-based minimal cover;
4. use the surviving rules to detect violations in a *dirtier* copy of the
   graph.

Run with::

    python examples/rule_discovery.py
"""

from __future__ import annotations

from repro import RuleSet, dect
from repro.core.implication import minimal_cover
from repro.core.satisfiability import is_satisfiable
from repro.datasets.kb import KBConfig, knowledge_graph
from repro.discovery import DiscoveryConfig, discover_ngds


def main() -> None:
    clean_config = KBConfig(
        name="clean-kb",
        num_entities=150,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=1.2,
        error_rate=0.0,
        seed=3,
    )
    clean_graph = knowledge_graph(clean_config)
    print(f"mining NGDs from a clean graph (|V|={clean_graph.node_count()}, |E|={clean_graph.edge_count()}) ...")

    mined = discover_ngds(
        clean_graph,
        DiscoveryConfig(max_pattern_edges=2, max_rules=10, min_support=8, min_confidence=0.98, seed=5),
    )
    print(f"mined {len(mined)} candidate rules:")
    for rule in mined:
        print(f"  {rule}")

    print("\nchecking the mined rules one by one with the satisfiability analysis ...")
    consistent = [rule for rule in mined if is_satisfiable(RuleSet([rule]))]
    print(f"  {len(consistent)} / {len(mined)} rules are individually satisfiable (as expected)")

    print("\nremoving redundant rules with the implication analysis ...")
    cover = minimal_cover(RuleSet(consistent, name="mined"))
    print(f"  minimal cover keeps {len(cover)} rules")

    dirty_graph = knowledge_graph(clean_config.replace(name="dirty-kb", error_rate=0.1, seed=4))
    print(f"\napplying the cover to a dirty copy (error rate 10%) ...")
    result = dect(dirty_graph, cover)
    print(f"  violations detected: {result.violation_count()}")
    rules_hit = sorted(result.violations.rules_violated())
    print(f"  rules that caught something: {rules_hit}")


if __name__ == "__main__":
    main()
