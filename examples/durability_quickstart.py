"""Durability quickstart: a crash-safe service with ``--data-dir``.

Run with::

    python examples/durability_quickstart.py

The script exercises the durability layer (`src/repro/storage/`,
``docs/ARCHITECTURE.md`` "The durability layer") end to end, in-process:

1. start a service with a data directory — every accepted update is
   fsynced to the write-ahead log before the ack;
2. register the Figure 1 graph, open a continuous session, post updates;
3. force a checkpoint (``POST /admin/checkpoint``), then post more
   updates so the WAL holds a suffix behind the checkpoint;
4. drop the service without closing it — simulating a crash — and boot a
   second service on the same directory: graphs, versions, the session
   and its per-version delta log all come back byte-identically.

On the command line the equivalent is::

    repro-detect serve --port 8731 --data-dir ./detect-data --checkpoint-every 64
    # ... kill -9 the process ...
    repro-detect serve --port 8731 --data-dir ./detect-data   # recovers
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BatchUpdate
from repro.core.builtin_rules import example_rules
from repro.datasets.figure1 import figure1_g2
from repro.graph.updates import NodePayload
from repro.service import DetectionService, ServiceClient


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-durability-"))
    try:
        run(workdir / "data")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run(data_dir: Path) -> None:

    # -- 1. a durable service: updates are WAL-logged before the ack --------
    service = DetectionService(port=0, data_dir=str(data_dir))
    service.manager.register_catalog("example", example_rules())
    service.start()
    client = ServiceClient(service.url)

    client.register_graph("yago", figure1_g2())
    session = client.create_session("yago", catalog="example")
    print(
        f"session {session['session']} opened at version {session['base_version']} "
        f"with {session['violation_count']} violation(s)"
    )

    # -- 2. post the curator's repair (version 1 -> 2) ----------------------
    repair = (
        BatchUpdate()
        .delete("Bhonpur", "total", "populationTotal")
        .insert(
            "Bhonpur",
            "total_corrected",
            "populationTotal",
            target_payload=NodePayload("integer", {"val": 600 + 722}),
        )
    )
    client.post_update("yago", repair)

    # -- 3. checkpoint, then leave a WAL suffix behind it -------------------
    print("checkpoint:", client.checkpoint())
    undo = (
        BatchUpdate()
        .delete("Bhonpur", "total_corrected", "populationTotal")
        .insert(
            "Bhonpur",
            "total",
            "populationTotal",
            target_payload=NodePayload("integer", {"val": 600}),
        )
    )
    client.post_update("yago", undo)  # this update lives only in the WAL

    expected = client.session_state(session["session"])
    print(
        f"pre-crash state: graph v{expected['current_version']}, "
        f"{expected['violation_count']} violation(s)"
    )

    # -- 4. "crash": kill the socket without checkpointing or closing -------
    service._httpd.shutdown()
    service._httpd.server_close()

    recovered = DetectionService(port=0, data_dir=str(data_dir))
    print("recovered:", recovered.persistence.recovered)
    with recovered:
        client2 = ServiceClient(recovered.url)
        state = client2.session_state(session["session"])
        assert state["current_version"] == expected["current_version"]
        assert state["violation_count"] == expected["violation_count"]
        deltas = client2.session_deltas(session["session"], since=0)
        print(
            f"post-recovery: graph v{state['current_version']}, "
            f"{state['violation_count']} violation(s), "
            f"{len(deltas['deltas'])} recorded delta(s) — identical to pre-crash"
        )

    print("recovered service stopped cleanly")


if __name__ == "__main__":
    main()
