"""Fake-account detection on a social graph, incrementally as accounts appear.

Example 1(4) of the paper: two accounts keyed to the same company whose
follower/following counts differ wildly suggest the smaller one is fake.  The
rule is φ4, an NGD whose premise mixes arithmetic (a weighted difference of
counts) with a comparison threshold — beyond GFDs and CFDs.

The script builds a small Twitter-like graph with a handful of companies and
their genuine support accounts, then streams in new accounts (some fake) and
uses ``inc_dect`` to flag the fakes as soon as their edges arrive.

Run with::

    python examples/fake_account_detection.py
"""

from __future__ import annotations

import random

from repro import BatchUpdate, Graph, RuleSet, apply_update, dect, inc_dect
from repro.core import phi4
from repro.graph.updates import NodePayload


def build_companies(num_companies: int, seed: int = 1) -> Graph:
    """Build companies with one genuine, well-followed support account each."""
    rng = random.Random(seed)
    graph = Graph("social")
    for index in range(num_companies):
        company = f"company{index}"
        account = f"{company}/support"
        graph.add_node(company, "company")
        graph.add_node(account, "account")
        graph.add_node(f"{account}/status", "boolean", {"val": 1})
        graph.add_node(f"{account}/following", "integer", {"val": rng.randint(5_000, 40_000)})
        graph.add_node(f"{account}/follower", "integer", {"val": rng.randint(50_000, 120_000)})
        graph.add_edge(account, company, "keys")
        graph.add_edge(account, f"{account}/status", "status")
        graph.add_edge(account, f"{account}/following", "following")
        graph.add_edge(account, f"{account}/follower", "follower")
    return graph


def new_account_update(company: str, name: str, following: int, followers: int) -> BatchUpdate:
    """The batch update describing a freshly created account keyed to ``company``."""
    return (
        BatchUpdate()
        .insert(name, company, "keys", source_payload=NodePayload("account"))
        .insert(name, f"{name}/status", "status", target_payload=NodePayload("boolean", {"val": 1}))
        .insert(
            name, f"{name}/following", "following", target_payload=NodePayload("integer", {"val": following})
        )
        .insert(
            name, f"{name}/follower", "follower", target_payload=NodePayload("integer", {"val": followers})
        )
    )


def main() -> None:
    graph = build_companies(num_companies=5)
    rules = RuleSet([phi4(threshold=50_000)], name="fake-account-rule")

    print("--- initial state: only the genuine support accounts exist ---")
    print(f"initial violations: {dect(graph, rules).violation_count()}")

    stream = [
        ("company0", "cheap_phish_0", 3, 12),                  # obvious fake
        ("company1", "company1_community", 30_000, 80_000),     # legitimate secondary account
        ("company2", "helpdesk_scam", 1, 2),                    # obvious fake
        ("company3", "company3_press", 30_000, 100_000),        # legitimate
        ("company0", "c0_giveaway_bot", 10, 40),                # fake on an already-watched company
    ]

    print("\n--- accounts appearing over time (incremental detection per batch) ---")
    flagged: list[str] = []
    for company, name, following, followers in stream:
        delta = new_account_update(company, name, following, followers)
        result = inc_dect(graph, rules, delta)
        suspicious = sorted({violation.mapping()["y"] for violation in result.introduced()})
        verdict = f"FLAGGED {suspicious}" if suspicious else "looks fine"
        print(f"  new account {name!r} keyed to {company}: {verdict}")
        flagged.extend(suspicious)
        graph = apply_update(graph, delta)

    print("\n--- summary ---")
    print(f"accounts flagged as likely fake: {sorted(set(flagged))}")
    final = dect(graph, rules)
    print(f"total violations in the final graph (batch re-check): {final.violation_count()}")


if __name__ == "__main__":
    main()
