"""Repository-level pytest configuration.

Makes the package importable straight from the source tree (``src`` layout)
even when the editable install has not been performed, so ``pytest`` works in
a freshly cloned checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
